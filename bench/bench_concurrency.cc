// Concurrent multi-query execution through one SessionManager: the shared
// worker pool, per-query fair-share scheduler queues, and admission control
// serving 1 / 8 / 64 concurrent clients over one ORC table.
//
// For each concurrency level the same total workload (kQueries queries)
// runs; per-query latency p50/p99 and aggregate throughput are reported.
// The machine-independent counts (queries completed, per-query result rows,
// admission rejections) are gated against bench/baseline/; latencies and
// throughput are timings, recorded for humans only.
//
// Shape check (the PR's acceptance criterion): aggregate throughput at 8
// concurrent clients must exceed the serial run of the same workload.
//
// Every level runs with the same simulated per-job startup latency
// (kJobStartupMs) — the fixed submission overhead that motivated Hive's
// container reuse and prewarming work. A serial client pays it once per
// query, back to back; concurrent sessions overlap it while the shared
// worker pool keeps the CPUs busy, which is where the throughput win comes
// from even on machines with few cores.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/session.h"
#include "common/stopwatch.h"
#include "datagen/loader.h"
#include "dfs/file_system.h"
#include "ql/driver.h"

namespace minihive {
namespace {

using bench::Check;
using bench::Fmt;
using bench::TablePrinter;

constexpr int kQueries = 64;    // Total workload per concurrency level.
constexpr int kJobStartupMs = 5;  // Simulated per-job submission latency.

const char* QueryForIndex(int i) {
  switch (i % 3) {
    case 0:
      return "SELECT o_custkey, COUNT(*), SUM(o_amount) FROM orders "
             "GROUP BY o_custkey";
    case 1:
      return "SELECT o_status, COUNT(*), MAX(o_amount) FROM orders "
             "GROUP BY o_status";
    default:
      return "SELECT o_id, o_amount FROM orders "
             "WHERE o_amount > 50.0 AND o_status = 'open'";
  }
}

struct LevelResult {
  int clients = 0;
  int completed = 0;
  int rejected = 0;
  double wall_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double qps = 0;
  uint64_t rows_q0 = 0;  // Result rows of query shape 0 (determinism gate).
};

LevelResult RunLevel(dfs::FileSystem* fs, ql::Catalog* catalog,
                     SessionManager* manager, int clients) {
  std::unique_ptr<Session> session = manager->NewSession("bench");
  std::vector<double> latencies(kQueries, 0.0);
  std::vector<int> rejections(clients, 0);
  std::vector<uint64_t> rows_q0(clients, 0);
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ql::DriverOptions options;
      options.session = session.get();
      options.vectorized_execution = true;
      options.job_startup_ms = kJobStartupMs;
      ql::Driver driver(fs, catalog, options);
      // Static round-robin assignment: every level runs the identical
      // kQueries workload, only the parallelism differs.
      for (int q = c; q < kQueries; q += clients) {
        Stopwatch latency;
        auto result = driver.Execute(QueryForIndex(q));
        latencies[q] = latency.ElapsedMillis();
        if (!result.ok()) {
          if (result.status().IsResourceExhausted()) {
            rejections[c]++;
            continue;
          }
          std::fprintf(stderr, "FATAL: query %d failed: %s\n", q,
                       result.status().ToString().c_str());
          std::abort();
        }
        if (q % 3 == 0) rows_q0[c] = result->rows.size();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LevelResult r;
  r.clients = clients;
  r.wall_ms = wall.ElapsedMillis();
  std::vector<double> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  r.p50_ms = sorted[sorted.size() / 2];
  r.p99_ms = sorted[std::min(sorted.size() - 1,
                             static_cast<size_t>(sorted.size() * 99 / 100))];
  for (int c = 0; c < clients; ++c) {
    r.rejected += rejections[c];
    if (rows_q0[c] > 0) r.rows_q0 = rows_q0[c];
  }
  r.completed = kQueries - r.rejected;
  r.qps = r.wall_ms > 0 ? r.completed / (r.wall_ms / 1000.0) : 0;
  return r;
}

int Main() {
  std::printf("=== Concurrency: shared scheduler + admission control ===\n\n");
  bench::BenchReporter reporter("concurrency");

  dfs::FileSystemOptions fs_options;
  fs_options.block_size = 256 * 1024;
  dfs::FileSystem fs(fs_options);
  ql::Catalog catalog(&fs);
  const int kRows = bench::SmokeScaled(200000, 20000);
  std::vector<Row> orders;
  orders.reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    orders.push_back({Value::Int(i), Value::Int(i % 128),
                      Value::Double((i % 97) * 2.25),
                      Value::String(i % 3 == 0 ? "open" : "done")});
  }
  TypePtr schema = bench::CheckResult(
      TypeDescription::Parse("struct<o_id:bigint,o_custkey:bigint,"
                             "o_amount:double,o_status:string>"),
      "schema");
  Check(datagen::CreateAndLoad(&catalog, "orders", schema,
                               formats::FormatKind::kOrcFile,
                               codec::CompressionKind::kNone, orders, 4),
        "load orders");

  SessionManagerOptions session_options;
  session_options.num_workers =
      static_cast<int>(std::max(4u, std::thread::hardware_concurrency()));
  SessionManager manager(session_options);

  TablePrinter table(
      {"clients", "completed", "rejected", "p50 ms", "p99 ms", "qps"});
  std::vector<LevelResult> levels;
  for (int clients : {1, 8, 64}) {
    LevelResult r = RunLevel(&fs, &catalog, &manager, clients);
    table.AddRow({std::to_string(r.clients), std::to_string(r.completed),
                  std::to_string(r.rejected), Fmt(r.p50_ms), Fmt(r.p99_ms),
                  Fmt(r.qps)});
    levels.push_back(r);

    std::string prefix = "c" + std::to_string(clients) + ".";
    reporter.AddMetric(prefix + "queries_completed", r.completed, "count");
    reporter.AddMetric(prefix + "queries_rejected", r.rejected, "count");
    reporter.AddMetric(prefix + "p50_ms", r.p50_ms, "ms");
    reporter.AddMetric(prefix + "p99_ms", r.p99_ms, "ms");
    reporter.AddMetric(prefix + "wall_ms", r.wall_ms, "ms");
    reporter.AddMetric(prefix + "qps", r.qps, "qps");  // timing-derived: not gated
    reporter.AddMetric(prefix + "groupby_rows", r.rows_q0, "rows");
  }
  table.Print();
  reporter.Write();

  double speedup_8 = levels[0].wall_ms / levels[1].wall_ms;
  std::printf("\nshape checks:\n");
  std::printf("  all queries admitted (no rejections): %s\n",
              levels[0].rejected + levels[1].rejected + levels[2].rejected == 0
                  ? "yes"
                  : "NO");
  std::printf("  8-client throughput vs serial: %.2fx %s\n", speedup_8,
              speedup_8 > 1.05 ? "(faster: yes)" : "(faster: NO)");
  if (speedup_8 <= 1.05) {
    std::fprintf(stderr,
                 "FATAL: 8 concurrent clients did not beat serial "
                 "(%.2fx)\n",
                 speedup_8);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace minihive

int main() { return minihive::Main(); }
