// Micro-benchmark for the sort-merge shuffle rebuild:
//
//  1. sort-vs-merge: the seed engine gathered every map task's records for a
//     partition and full-sorted them in the reduce task (O(N log N), single
//     thread per partition). The rebuilt engine sorts runs inside the map
//     tasks (parallel) and only k-way merges at the reduce side
//     (O(N log M)). Both paths are timed here over the same >=1M-record
//     skewed-key workload.
//
//  2. combiner on/off: the same aggregation job through the real engine,
//     with and without a map-side combiner, reporting shuffled_bytes and
//     the new combine/sort counters.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/value.h"
#include "mr/engine.h"

namespace minihive {
namespace {

using bench::Fmt;
using bench::Mb;
using bench::TablePrinter;

// Smoke mode (MINIHIVE_BENCH_SMOKE, CI's bench-smoke job) shrinks the
// workload ~20x; the shape checks and the report pipeline stay identical.
const uint64_t kRecords = bench::SmokeScaled<uint64_t>(1'200'000, 60'000);
constexpr int kRuns = 16;  // Map tasks feeding one reduce partition.

struct Record {
  int64_t key;
  int64_t value;
};

/// Skewed keys: 90% of records hit 100 hot keys, the rest spread over 100k.
std::vector<Record> MakeWorkload() {
  Random rng(20140627);
  std::vector<Record> records(kRecords);
  for (uint64_t i = 0; i < kRecords; ++i) {
    int64_t key = rng.Bernoulli(0.9)
                      ? static_cast<int64_t>(rng.Uniform(100))
                      : static_cast<int64_t>(100 + rng.Uniform(100000));
    records[i] = {key, static_cast<int64_t>(i)};
  }
  return records;
}

bool RecordLess(const Record& a, const Record& b) { return a.key < b.key; }

/// Walks a sorted stream counting group transitions (stands in for the
/// Reducer Driver's group-boundary work; keeps the optimizer honest).
struct GroupWalker {
  int64_t groups = 0;
  int64_t checksum = 0;
  int64_t last_key = -1;
  void Feed(const Record& r) {
    if (r.key != last_key) {
      ++groups;
      last_key = r.key;
    }
    checksum += r.value;
  }
};

double TimeFullSort(const std::vector<std::vector<Record>>& runs,
                    GroupWalker* walker) {
  Stopwatch watch;
  std::vector<Record> all;
  size_t total = 0;
  for (const auto& run : runs) total += run.size();
  all.reserve(total);
  for (const auto& run : runs) {
    all.insert(all.end(), run.begin(), run.end());
  }
  std::sort(all.begin(), all.end(), RecordLess);
  for (const Record& r : all) walker->Feed(r);
  return watch.ElapsedMillis();
}

double TimeRunSorts(std::vector<std::vector<Record>>* runs, int workers) {
  Stopwatch watch;
  std::vector<std::thread> threads;
  std::mutex mutex;
  size_t next = 0;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&]() {
      while (true) {
        size_t index;
        {
          std::lock_guard<std::mutex> lock(mutex);
          if (next >= runs->size()) return;
          index = next++;
        }
        std::sort((*runs)[index].begin(), (*runs)[index].end(), RecordLess);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return watch.ElapsedMillis();
}

double TimeKWayMerge(const std::vector<std::vector<Record>>& runs,
                     GroupWalker* walker) {
  Stopwatch watch;
  struct Cursor {
    const std::vector<Record>* run;
    size_t pos;
    int index;
  };
  auto after = [](const Cursor& a, const Cursor& b) {
    const Record& ra = (*a.run)[a.pos];
    const Record& rb = (*b.run)[b.pos];
    if (rb.key != ra.key) return rb.key < ra.key;
    return b.index < a.index;
  };
  std::vector<Cursor> heap;
  for (size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].empty()) heap.push_back({&runs[i], 0, static_cast<int>(i)});
  }
  std::make_heap(heap.begin(), heap.end(), after);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    Cursor& cursor = heap.back();
    walker->Feed((*cursor.run)[cursor.pos]);
    if (++cursor.pos < cursor.run->size()) {
      std::push_heap(heap.begin(), heap.end(), after);
    } else {
      heap.pop_back();
    }
  }
  return watch.ElapsedMillis();
}

// ---- Part 2: the real engine, combiner on/off.

class SkewMapTask : public mr::MapTask {
 public:
  Status Run(const mr::InputSplit& split, int, int,
             mr::ShuffleEmitter* emitter) override {
    Random rng(split.offset);
    for (uint64_t i = 0; i < split.length; ++i) {
      int64_t key = rng.Bernoulli(0.9)
                        ? static_cast<int64_t>(rng.Uniform(100))
                        : static_cast<int64_t>(100 + rng.Uniform(100000));
      MINIHIVE_RETURN_IF_ERROR(emitter->Emit(
          {Value::Int(key)},
          {Value::Int(static_cast<int64_t>(i)), Value::Int(1)}, 0));
    }
    CountInputRecords(split.length);
    return Status::OK();
  }
};

/// Sums (value, count) pairs per key group; used both as the combiner and
/// as the reduce task (partials merge with the same function).
class SumCombineTask : public mr::ReduceTask {
 public:
  explicit SumCombineTask(mr::ShuffleEmitter* out) : out_(out) {}

  Status StartGroup(const Row& key) override {
    key_ = key;
    sum_ = count_ = 0;
    return Status::OK();
  }
  Status Reduce(const Row&, const Row& value, int) override {
    sum_ += value[0].AsInt();
    count_ += value[1].AsInt();
    return Status::OK();
  }
  Status EndGroup() override {
    if (out_ == nullptr) return Status::OK();
    return out_->Emit(key_, {Value::Int(sum_), Value::Int(count_)}, 0);
  }
  Status Finish() override { return Status::OK(); }

 private:
  mr::ShuffleEmitter* out_;
  Row key_;
  int64_t sum_ = 0;
  int64_t count_ = 0;
};

mr::JobCounters RunEngineJob(bool use_combiner) {
  dfs::FileSystem fs;
  mr::Engine engine(&fs, mr::EngineOptions{4, 0});
  mr::JobConfig job;
  job.name = use_combiner ? "skew-sum-combined" : "skew-sum";
  for (int s = 0; s < kRuns; ++s) {
    job.splits.push_back({"", static_cast<uint64_t>(s + 1) * 104729,
                          kRecords / kRuns, -1, 0});
  }
  job.num_reducers = 4;
  job.map_factory = [] { return std::make_unique<SkewMapTask>(); };
  job.reduce_factory = [](int, int) {
    return std::make_unique<SumCombineTask>(nullptr);
  };
  if (use_combiner) {
    job.combiner_factory = [](mr::ShuffleEmitter* out) {
      return std::make_unique<SumCombineTask>(out);
    };
  }
  mr::JobCounters counters;
  bench::Check(engine.RunJob(job, &counters), job.name.c_str());
  return counters;
}

int Main() {
  std::printf("=== micro: sort-merge shuffle (%llu records, %d runs, "
              "skewed keys) ===\n\n",
              static_cast<unsigned long long>(kRecords), kRuns);

  // ---- Part 1: full-sort (seed reduce path) vs sorted runs + k-way merge.
  std::vector<std::vector<Record>> runs(kRuns);
  {
    std::vector<Record> all = MakeWorkload();
    size_t per_run = all.size() / kRuns;
    for (int r = 0; r < kRuns; ++r) {
      auto begin = all.begin() + r * per_run;
      auto end = r == kRuns - 1 ? all.end() : begin + per_run;
      runs[r].assign(begin, end);
    }
  }

  GroupWalker full_sort_walker;
  double full_sort_ms = TimeFullSort(runs, &full_sort_walker);

  double run_sort_ms = TimeRunSorts(&runs, 4);
  GroupWalker merge_walker;
  double merge_ms = TimeKWayMerge(runs, &merge_walker);

  if (full_sort_walker.groups != merge_walker.groups ||
      full_sort_walker.checksum != merge_walker.checksum) {
    std::fprintf(stderr, "FATAL: merge and full-sort disagree\n");
    return 1;
  }

  TablePrinter sort_table({"path", "map-side ms", "reduce-side ms",
                           "total ms"});
  sort_table.AddRow({"seed: gather + full sort", "0",
                     Fmt(full_sort_ms, 1), Fmt(full_sort_ms, 1)});
  sort_table.AddRow({"sorted runs (4 workers) + k-way merge",
                     Fmt(run_sort_ms, 1), Fmt(merge_ms, 1),
                     Fmt(run_sort_ms + merge_ms, 1)});
  sort_table.Print();
  std::printf("  reduce-side speedup (merge vs full sort): %.2fx\n",
              full_sort_ms / merge_ms);
  std::printf("  end-to-end speedup: %.2fx  (groups=%lld)\n\n",
              full_sort_ms / (run_sort_ms + merge_ms),
              static_cast<long long>(merge_walker.groups));

  // ---- Part 2: the real engine with the combiner on/off.
  mr::JobCounters without = RunEngineJob(false);
  mr::JobCounters with = RunEngineJob(true);

  TablePrinter combine_table({"config", "shuffled MB", "reduce input",
                              "sort ms", "reduce ms"});
  combine_table.AddRow(
      {"combiner off", Mb(without.shuffled_bytes.load()),
       std::to_string(without.reduce_input_records.load()),
       Fmt(without.shuffle_sort_millis(), 1),
       Fmt(without.reduce_phase_millis, 1)});
  combine_table.AddRow(
      {"combiner on", Mb(with.shuffled_bytes.load()),
       std::to_string(with.reduce_input_records.load()),
       Fmt(with.shuffle_sort_millis(), 1),
       Fmt(with.reduce_phase_millis, 1)});
  combine_table.Print();
  std::printf("  combine: %llu -> %llu records (%.1f%% kept off the wire)\n",
              static_cast<unsigned long long>(
                  with.combine_input_records.load()),
              static_cast<unsigned long long>(
                  with.combine_output_records.load()),
              100.0 * (1.0 - static_cast<double>(
                                 with.combine_output_records.load()) /
                                 static_cast<double>(
                                     with.combine_input_records.load())));
  std::printf("  shuffled bytes: %s MB -> %s MB\n",
              Mb(without.shuffled_bytes.load()).c_str(),
              Mb(with.shuffled_bytes.load()).c_str());

  bench::BenchReporter reporter("micro_shuffle");
  reporter.AddMetric("records", static_cast<double>(kRecords), "rows");
  reporter.AddMetric("groups", static_cast<double>(merge_walker.groups),
                     "count");
  reporter.AddMetric("full_sort_ms", full_sort_ms, "ms");
  reporter.AddMetric("run_sort_ms", run_sort_ms, "ms");
  reporter.AddMetric("kway_merge_ms", merge_ms, "ms");
  reporter.AddJobCounters("combiner_off", without);
  reporter.AddJobCounters("combiner_on", with);
  reporter.Write();

  bool merge_wins = merge_ms < full_sort_ms;
  bool combiner_shrinks =
      with.shuffled_bytes.load() < without.shuffled_bytes.load();
  std::printf("\nshape checks:\n");
  std::printf("  k-way merge beats full-sort reduce path: %s\n",
              merge_wins ? "yes" : "NO");
  std::printf("  combiner strictly reduces shuffled bytes: %s\n",
              combiner_shrinks ? "yes" : "NO");
  return merge_wins && combiner_shrinks ? 0 : 1;
}

}  // namespace
}  // namespace minihive

int main() { return minihive::Main(); }
