#ifndef MINIHIVE_BENCH_BENCH_UTIL_H_
#define MINIHIVE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace minihive::bench {

/// Crashes loudly on error — benches have no recovery story.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).ValueOrDie();
}

inline std::string Mb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", bytes / (1024.0 * 1024.0));
  return buf;
}

/// Fixed-width table printer for the figure/table reproductions.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const std::string& h : headers_) widths_.push_back(h.size());
  }

  void AddRow(std::vector<std::string> row) {
    for (size_t i = 0; i < row.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], row[i].size());
    }
    rows_.push_back(std::move(row));
  }

  void Print() const {
    PrintRow(headers_);
    std::string rule;
    for (size_t w : widths_) rule += std::string(w + 2, '-') + "+";
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row);
    std::printf("\n");
  }

 private:
  void PrintRow(const std::vector<std::string>& row) const {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf(" %-*s |", static_cast<int>(widths_[i]), row[i].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace minihive::bench

#endif  // MINIHIVE_BENCH_BENCH_UTIL_H_
