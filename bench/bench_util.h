#ifndef MINIHIVE_BENCH_BENCH_UTIL_H_
#define MINIHIVE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "mr/engine.h"

// Git/build metadata; the bench CMakeLists defines these at configure time.
#ifndef MINIHIVE_GIT_COMMIT
#define MINIHIVE_GIT_COMMIT "unknown"
#endif
#ifndef MINIHIVE_GIT_BRANCH
#define MINIHIVE_GIT_BRANCH "unknown"
#endif
#ifndef MINIHIVE_BUILD_TYPE
#define MINIHIVE_BUILD_TYPE "unknown"
#endif
#ifndef MINIHIVE_COMPILER_ID
#define MINIHIVE_COMPILER_ID "unknown"
#endif

namespace minihive::bench {

/// Crashes loudly on error — benches have no recovery story.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).ValueOrDie();
}

inline std::string Mb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", bytes / (1024.0 * 1024.0));
  return buf;
}

/// Fixed-width table printer for the figure/table reproductions.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const std::string& h : headers_) widths_.push_back(h.size());
  }

  void AddRow(std::vector<std::string> row) {
    for (size_t i = 0; i < row.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], row[i].size());
    }
    rows_.push_back(std::move(row));
  }

  void Print() const {
    PrintRow(headers_);
    std::string rule;
    for (size_t w : widths_) rule += std::string(w + 2, '-') + "+";
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row);
    std::printf("\n");
  }

 private:
  void PrintRow(const std::vector<std::string>& row) const {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf(" %-*s |", static_cast<int>(widths_[i]), row[i].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

/// True when MINIHIVE_BENCH_SMOKE is set (to anything but "0"): benches
/// shrink their shapes so CI's bench-smoke job finishes in seconds while
/// still exercising the full measurement and reporting path.
inline bool SmokeMode() {
  const char* v = std::getenv("MINIHIVE_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && std::string_view(v) != "0";
}

/// Picks the workload size: `full` normally, `smoke` under MINIHIVE_BENCH_SMOKE.
template <typename T>
T SmokeScaled(T full, T smoke) {
  return SmokeMode() ? smoke : full;
}

/// Collects a bench's headline numbers and writes them — together with a
/// process-wide metrics-registry snapshot and git/build metadata — to
/// BENCH_<name>.json (schema below). tools/check_bench_regression.py compares
/// these files against bench/baseline/.
///
///   {"schema_version": 1, "bench": ..., "smoke": ...,
///    "git": {"commit", "branch"}, "build": {"type", "compiler"},
///    "metrics": {<name>: {"value", "unit"}, ...},
///    "registry": {"counters": ..., "gauges": ..., "histograms": ...}}
///
/// Units matter: the regression checker only compares machine-independent
/// units (rows/bytes/count/...) and ignores timings ("ms", "ns", ...).
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {}

  void AddMetric(std::string_view metric, double value, std::string_view unit) {
    metrics_.push_back({std::string(metric), value, std::string(unit)});
  }

  /// Folds one job's counters in under "<prefix>." using the JobCounters
  /// field tables (stays in sync with the struct by construction).
  void AddJobCounters(std::string_view prefix, const mr::JobCounters& c) {
    std::string p = std::string(prefix) + ".";
    for (const auto& f : mr::JobCounters::atomic_u64_fields()) {
      AddMetric(p + f.name, static_cast<double>((c.*f.member).load()), "count");
    }
    for (const auto& f : mr::JobCounters::int_fields()) {
      AddMetric(p + f.name, static_cast<double>(c.*f.member), "count");
    }
    for (const auto& f : mr::JobCounters::atomic_i64_fields()) {
      AddMetric(p + f.name, static_cast<double>((c.*f.member).load()), "ns");
    }
    for (const auto& f : mr::JobCounters::double_fields()) {
      AddMetric(p + f.name, c.*f.member, "ms");
    }
  }

  /// Serializes the report (pretty JSON, stable key layout).
  std::string ToJson() const {
    json::Writer writer;
    writer.BeginObject();
    writer.Key("schema_version").Int(1);
    writer.Key("bench").String(name_);
    writer.Key("smoke").Bool(SmokeMode());
    writer.Key("git").BeginObject();
    writer.Key("commit").String(MINIHIVE_GIT_COMMIT);
    writer.Key("branch").String(MINIHIVE_GIT_BRANCH);
    writer.EndObject();
    writer.Key("build").BeginObject();
    writer.Key("type").String(MINIHIVE_BUILD_TYPE);
    writer.Key("compiler").String(MINIHIVE_COMPILER_ID);
    writer.EndObject();
    writer.Key("metrics").BeginObject();
    for (const Metric& m : metrics_) {
      writer.Key(m.name).BeginObject();
      writer.Key("value").Double(m.value);
      writer.Key("unit").String(m.unit);
      writer.EndObject();
    }
    writer.EndObject();
    writer.Key("registry");
    telemetry::MetricsRegistry::Global().WriteJson(&writer);
    writer.EndObject();
    return writer.str();
  }

  /// Writes BENCH_<name>.json into $MINIHIVE_BENCH_OUT_DIR (default: cwd).
  /// Crashes on I/O failure, like everything else in a bench.
  void Write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("MINIHIVE_BENCH_OUT_DIR")) {
      if (env[0] != '\0') dir = env;
    }
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    out << ToJson() << "\n";
    out.close();
    if (!out) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
      std::abort();
    }
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };

  std::string name_;
  std::vector<Metric> metrics_;
};

}  // namespace minihive::bench

#endif  // MINIHIVE_BENCH_BENCH_UTIL_H_
