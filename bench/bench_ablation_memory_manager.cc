// Ablation for §4.4's memory manager: many concurrent ORC writers (the
// dynamic-partitioning scenario) with and without the manager. With it,
// aggregate buffered bytes stay bounded by the threshold (stripes shrink);
// without it, the footprint grows with the writer count — the
// out-of-memory hazard the paper describes.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/tpch.h"
#include "orc/memory_manager.h"
#include "orc/writer.h"

namespace minihive {
namespace {

using bench::Check;
using bench::CheckResult;
using bench::Mb;
using bench::TablePrinter;

int Main() {
  std::printf("=== Ablation: ORC writer memory manager (paper §4.4) ===\n\n");

  constexpr uint64_t kStripeSize = 8 * 1024 * 1024;
  constexpr uint64_t kThreshold = 16 * 1024 * 1024;  // "Task memory" / 2.
  constexpr int kRowsPerWriter = 30000;

  bench::BenchReporter reporter("ablation_memory_manager");
  TablePrinter table(
      {"writers", "manager", "peak buffered MB", "stripes/file"});
  for (int writers : {1, 4, 16}) {
    for (bool managed : {false, true}) {
      dfs::FileSystem fs;
      orc::MemoryManager manager(kThreshold);
      std::vector<std::unique_ptr<orc::OrcWriter>> open_writers;
      for (int w = 0; w < writers; ++w) {
        orc::OrcWriterOptions options;
        options.stripe_size = kStripeSize;
        options.memory_manager = managed ? &manager : nullptr;
        open_writers.push_back(CheckResult(
            orc::OrcWriter::Create(&fs, "/part-" + std::to_string(w),
                                   datagen::TpchLineitemSchema(), options),
            "create"));
      }
      uint64_t peak = 0;
      for (int i = 0; i < kRowsPerWriter; ++i) {
        uint64_t buffered = 0;
        for (int w = 0; w < writers; ++w) {
          Check(open_writers[w]->AddRow(
                    datagen::TpchLineitemRow(i + w * kRowsPerWriter, 42)),
                "row");
          buffered += open_writers[w]->buffered_bytes();
        }
        peak = std::max(peak, buffered);
      }
      uint64_t stripes = 0;
      for (auto& writer : open_writers) {
        Check(writer->Close(), "close");
        stripes += writer->stripes_written();
      }
      table.AddRow({std::to_string(writers), managed ? "on" : "off",
                    Mb(peak), bench::Fmt(
                        static_cast<double>(stripes) / writers, 1)});
      std::string prefix = "writers_" + std::to_string(writers) +
                           (managed ? ".managed." : ".unmanaged.");
      reporter.AddMetric(prefix + "peak_buffered_bytes",
                         static_cast<double>(peak), "bytes");
      reporter.AddMetric(prefix + "stripes",
                         static_cast<double>(stripes), "count");
    }
  }
  table.Print();
  reporter.Write();
  std::printf("expected: without the manager, peak memory grows with the "
              "writer count; with it, the total stays near the %s MB "
              "threshold (more, smaller stripes).\n",
              Mb(kThreshold).c_str());
  return 0;
}

}  // namespace
}  // namespace minihive

int main() { return minihive::Main(); }
