// Ingest-path benchmark for mutable managed tables:
//   1. INSERT INTO throughput — many small batches appended through the
//      attempt+rename commit protocol, fanning out across partitions
//      (the classic streaming-ingest small-file problem, built on purpose).
//   2. Merge-on-read scan cost — physical bytes and file count for a full
//      aggregation over the fragmented table, with delete debt applied
//      through per-file bitmaps.
//   3. Background compaction payoff — sweeps run to quiescence, then the
//      same scan again; the physical-byte and file-count deltas are the
//      headline numbers.
// File counts, row counts, and physical byte counts are machine-independent
// and gated against bench/baseline/; timings are recorded for humans only.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "dfs/file_system.h"
#include "ql/catalog.h"
#include "ql/compaction.h"
#include "ql/driver.h"

namespace minihive {
namespace {

using bench::Check;
using bench::CheckResult;
using bench::Fmt;
using bench::TablePrinter;

constexpr int kPartitions = 4;

struct ScanResult {
  uint64_t physical_bytes = 0;
  uint64_t files = 0;
  uint64_t live_rows = 0;
};

uint64_t FileCount(ql::Catalog* catalog, const std::string& table) {
  const ql::TableDesc* desc =
      CheckResult(catalog->GetTable(table), "get table");
  return catalog->TableFiles(*desc).size();
}

/// Runs the aggregation with caches off so bytes_read_physical reflects the
/// on-disk layout, not cache luck. Fresh driver per scan = fresh session.
ScanResult Scan(dfs::FileSystem* fs, ql::Catalog* catalog,
                const std::string& table) {
  ql::DriverOptions options;
  options.num_workers = 2;
  options.vectorized_execution = true;
  options.block_cache_bytes = 0;
  options.metadata_cache_bytes = 0;
  ql::Driver driver(fs, catalog, options);

  ScanResult r;
  const uint64_t before = fs->stats().bytes_read_physical.load();
  auto result = CheckResult(
      driver.Execute("SELECT grp, COUNT(*) FROM " + table + " GROUP BY grp"),
      "scan");
  r.physical_bytes = fs->stats().bytes_read_physical.load() - before;
  r.files = FileCount(catalog, table);
  for (const Row& row : result.rows) {
    r.live_rows += static_cast<uint64_t>(row[1].AsInt());
  }
  return r;
}

int Main() {
  std::printf("=== Ingest: INSERT INTO small files -> compaction ===\n\n");
  bench::BenchReporter reporter("ingest");

  const int kBatches = bench::SmokeScaled(96, 12);
  const int kRowsPerBatch = bench::SmokeScaled(250, 50);

  dfs::FileSystemOptions fs_options;
  fs_options.block_size = 256 * 1024;
  dfs::FileSystem fs(fs_options);
  ql::Catalog catalog(&fs);
  // Caches off for the whole bench: its write-through block cache would
  // otherwise serve the scans from memory and hide the layout delta.
  ql::DriverOptions ingest_options;
  ingest_options.block_cache_bytes = 0;
  ingest_options.metadata_cache_bytes = 0;
  ql::Driver ingest(&fs, &catalog, ingest_options);

  Check(ingest
            .Execute(
                "CREATE TABLE ingest (k INT, grp INT, amount DOUBLE) "
                "PARTITIONED BY (grp) UNIQUE KEY (k)")
            .status(),
        "create table");

  // Phase 1: many small committed batches, keys striped over partitions.
  uint64_t rows_inserted = 0;
  Stopwatch watch;
  for (int batch = 0; batch < kBatches; ++batch) {
    std::string sql = "INSERT INTO ingest VALUES ";
    for (int i = 0; i < kRowsPerBatch; ++i) {
      const int64_t k = static_cast<int64_t>(batch) * kRowsPerBatch + i;
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(k) + ", " +
             std::to_string(k % kPartitions) + ", " +
             std::to_string(k % 1000) + ".5)";
    }
    rows_inserted += CheckResult(ingest.Execute(sql), "insert").rows_affected;
  }
  const double ingest_ms = watch.ElapsedMillis();
  const uint64_t files_after_ingest = FileCount(&catalog, "ingest");

  // Phase 2: delete debt (a quarter of the keyspace), then the fragmented
  // merge-on-read scan.
  const int64_t delete_bound =
      static_cast<int64_t>(kBatches) * kRowsPerBatch / 4;
  const uint64_t rows_deleted =
      CheckResult(ingest.Execute("DELETE FROM ingest WHERE k < " +
                                 std::to_string(delete_bound)),
                  "delete")
          .rows_affected;
  watch.Reset();
  const ScanResult pre = Scan(&fs, &catalog, "ingest");
  const double pre_scan_ms = watch.ElapsedMillis();

  // Phase 3: compaction sweeps to quiescence (one table task per sweep;
  // the final extra sweep reaps the last tombstones and proves idleness).
  ql::CompactionManager compactor(&fs, &catalog);
  uint64_t sweeps = 0;
  watch.Reset();
  for (int i = 0; i < 200; ++i) {
    ql::CompactionStats s = CheckResult(compactor.RunOnce(), "compact");
    ++sweeps;
    if (s.files_removed == 0 && s.files_written == 0 &&
        s.tombstones_deleted == 0) {
      break;
    }
  }
  const double compact_ms = watch.ElapsedMillis();
  ql::CompactionStats totals = compactor.totals();

  watch.Reset();
  const ScanResult post = Scan(&fs, &catalog, "ingest");
  const double post_scan_ms = watch.ElapsedMillis();

  TablePrinter ing({"phase", "ms", "rows", "files"});
  ing.AddRow({"ingest (" + std::to_string(kBatches) + " batches)",
              Fmt(ingest_ms), std::to_string(rows_inserted),
              std::to_string(files_after_ingest)});
  ing.AddRow({"delete", "", std::to_string(rows_deleted), ""});
  ing.AddRow({"compaction (" + std::to_string(sweeps) + " sweeps)",
              Fmt(compact_ms), std::to_string(totals.rows_rewritten),
              std::to_string(post.files)});
  ing.Print();

  TablePrinter sc({"scan", "ms", "physical MB", "files", "live rows"});
  sc.AddRow({"pre-compaction", Fmt(pre_scan_ms), bench::Mb(pre.physical_bytes),
             std::to_string(pre.files), std::to_string(pre.live_rows)});
  sc.AddRow({"post-compaction", Fmt(post_scan_ms),
             bench::Mb(post.physical_bytes), std::to_string(post.files),
             std::to_string(post.live_rows)});
  sc.Print();

  reporter.AddMetric("ingest.rows", static_cast<double>(rows_inserted),
                     "rows");
  reporter.AddMetric("ingest.batches", kBatches, "count");
  reporter.AddMetric("ingest.files", static_cast<double>(files_after_ingest),
                     "count");
  reporter.AddMetric("ingest.ms", ingest_ms, "ms");
  reporter.AddMetric("delete.rows", static_cast<double>(rows_deleted),
                     "rows");
  reporter.AddMetric("scan.pre_physical_bytes",
                     static_cast<double>(pre.physical_bytes), "bytes");
  reporter.AddMetric("scan.pre_files", static_cast<double>(pre.files),
                     "count");
  reporter.AddMetric("scan.pre_ms", pre_scan_ms, "ms");
  reporter.AddMetric("scan.post_physical_bytes",
                     static_cast<double>(post.physical_bytes), "bytes");
  reporter.AddMetric("scan.post_files", static_cast<double>(post.files),
                     "count");
  reporter.AddMetric("scan.post_ms", post_scan_ms, "ms");
  reporter.AddMetric("compaction.sweeps", static_cast<double>(sweeps),
                     "count");
  reporter.AddMetric("compaction.files_removed",
                     static_cast<double>(totals.files_removed), "count");
  reporter.AddMetric("compaction.files_written",
                     static_cast<double>(totals.files_written), "count");
  reporter.AddMetric("compaction.rows_rewritten",
                     static_cast<double>(totals.rows_rewritten), "rows");
  reporter.AddMetric("compaction.deleted_rows_reclaimed",
                     static_cast<double>(totals.deleted_rows_reclaimed),
                     "rows");
  reporter.AddMetric("compaction.ms", compact_ms, "ms");
  reporter.Write();

  const uint64_t live = rows_inserted - rows_deleted;
  std::printf("shape checks:\n");
  std::printf("  scans agree on live rows (%llu): %s\n",
              static_cast<unsigned long long>(live),
              pre.live_rows == live && post.live_rows == live ? "yes" : "NO");
  std::printf("  compaction shrank file count (%llu -> %llu): %s\n",
              static_cast<unsigned long long>(pre.files),
              static_cast<unsigned long long>(post.files),
              post.files < pre.files ? "yes" : "NO");
  std::printf("  compaction shrank scan physical bytes (%s -> %s MB): %s\n",
              bench::Mb(pre.physical_bytes).c_str(),
              bench::Mb(post.physical_bytes).c_str(),
              post.physical_bytes < pre.physical_bytes ? "yes" : "NO");
  std::printf("  delete debt reclaimed: %s\n",
              totals.deleted_rows_reclaimed >= rows_deleted ? "yes" : "NO");
  return 0;
}

}  // namespace
}  // namespace minihive

int main() { return minihive::Main(); }
