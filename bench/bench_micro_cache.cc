// Microbenchmarks for the session cache layer (LLAP-style, scaled down):
//   1. Cache core operations — insert / hit / miss throughput, single shard
//      contention excluded (single-threaded; common_cache_test covers the
//      concurrent budget contract).
//   2. DFS ReadAt cold vs warm — the block cache turning repeated range
//      reads into memory copies, measured via the physical/cached IoStats
//      split.
//   3. ORC reopen — the metadata cache eliminating tail re-parse and
//      checksum re-verification when a file is opened again in the session.
// The machine-independent counters (hit/miss/byte counts) are gated against
// bench/baseline/; timings are recorded for humans only.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/cache.h"
#include "common/stopwatch.h"
#include "dfs/file_system.h"
#include "orc/reader.h"
#include "orc/writer.h"

namespace minihive {
namespace {

using bench::Check;
using bench::CheckResult;
using bench::Fmt;
using bench::TablePrinter;

struct CoreOpsResult {
  double insert_ms = 0;
  double hit_ms = 0;
  double miss_ms = 0;
  int ops = 0;
};

CoreOpsResult BenchCoreOps() {
  const int kOps = bench::SmokeScaled(200000, 20000);
  const size_t kValueBytes = 256;
  // Budget sized so the working set fits: hits are real hits.
  cache::Cache cache("bench.core", static_cast<uint64_t>(kOps) * 512);
  auto value = std::make_shared<const std::string>(kValueBytes, 'v');

  CoreOpsResult r;
  r.ops = kOps;
  Stopwatch watch;
  for (int i = 0; i < kOps; ++i) {
    cache.InsertAndRelease(cache::BlockCacheKey("/bench/core", 1, i), value,
                           kValueBytes + cache::kEntryOverhead);
  }
  r.insert_ms = watch.ElapsedMillis();

  watch.Reset();
  for (int i = 0; i < kOps; ++i) {
    cache::Cache::Handle* h =
        cache.Lookup(cache::BlockCacheKey("/bench/core", 1, i));
    if (h != nullptr) cache.Release(h);
  }
  r.hit_ms = watch.ElapsedMillis();

  watch.Reset();
  for (int i = 0; i < kOps; ++i) {
    cache::Cache::Handle* h =
        cache.Lookup(cache::BlockCacheKey("/bench/core", 2, i));
    if (h != nullptr) cache.Release(h);
  }
  r.miss_ms = watch.ElapsedMillis();
  return r;
}

struct ReadAtResult {
  double cold_ms = 0;
  double warm_ms = 0;
  uint64_t physical_bytes = 0;   // All passes; only the cold pass adds any.
  uint64_t cold_cached_bytes = 0;  // Chunks served by blocks the cold pass
                                   // itself already populated.
  uint64_t warm_cached_bytes = 0;
};

ReadAtResult BenchReadAt(bench::BenchReporter* reporter) {
  const uint64_t kFileBytes = bench::SmokeScaled(32u << 20, 4u << 20);
  const uint64_t kChunk = 64 * 1024;
  dfs::FileSystemOptions fs_options;
  // Blocks well under a cache shard (budget / 8), so every block is
  // cacheable and the warm pass is fully served from memory.
  fs_options.block_size = 256 * 1024;
  dfs::FileSystem fs(fs_options);
  auto caches = std::make_shared<cache::CacheManager>(/*block_cache_bytes=*/4 * kFileBytes,
                             /*metadata_cache_bytes=*/0);
  fs.set_cache_manager(caches);

  auto writer = CheckResult(fs.Create("/bench/blob"), "create");
  std::string chunk(kChunk, 'b');
  for (uint64_t off = 0; off < kFileBytes; off += kChunk) {
    Check(writer->Append(chunk), "append");
  }
  Check(writer->Close(), "close");

  auto reader = CheckResult(fs.Open("/bench/blob"), "open");
  ReadAtResult r;
  std::string out;
  Stopwatch watch;
  for (uint64_t off = 0; off < kFileBytes; off += kChunk) {
    Check(reader->ReadAt(off, kChunk, &out), "cold read");
  }
  r.cold_ms = watch.ElapsedMillis();
  r.physical_bytes = fs.stats().bytes_read_physical.load();
  r.cold_cached_bytes = fs.stats().bytes_read_cached.load();

  watch.Reset();
  for (uint64_t off = 0; off < kFileBytes; off += kChunk) {
    Check(reader->ReadAt(off, kChunk, &out), "warm read");
  }
  r.warm_ms = watch.ElapsedMillis();
  r.warm_cached_bytes =
      fs.stats().bytes_read_cached.load() - r.cold_cached_bytes;

  reporter->AddMetric("readat.block_cache_hits",
                      static_cast<double>(caches->block_cache()->stats().hits),
                      "count");
  fs.set_cache_manager(nullptr);
  return r;
}

struct ReopenResult {
  double cold_open_ms = 0;
  double warm_open_ms = 0;
  uint64_t meta_hits = 0;
  uint64_t meta_misses = 0;
};

ReopenResult BenchOrcReopen() {
  const int kRows = bench::SmokeScaled(200000, 20000);
  const int kReopens = 20;
  dfs::FileSystem fs;
  auto caches = std::make_shared<cache::CacheManager>(/*block_cache_bytes=*/0,
                             /*metadata_cache_bytes=*/16 << 20);
  fs.set_cache_manager(caches);

  TypePtr schema = CheckResult(
      TypeDescription::Parse("struct<k:bigint,v:string,x:double>"), "schema");
  auto writer =
      CheckResult(orc::OrcWriter::Create(&fs, "/bench/orc", schema), "writer");
  for (int i = 0; i < kRows; ++i) {
    Check(writer->AddRow({Value::Int(i),
                          Value::String("row-" + std::to_string(i % 1000)),
                          Value::Double(i * 0.25)}),
          "add row");
  }
  Check(writer->Close(), "orc close");

  ReopenResult r;
  Stopwatch watch;
  auto first = CheckResult(orc::OrcReader::Open(&fs, "/bench/orc"), "open");
  r.cold_open_ms = watch.ElapsedMillis();
  (void)first;

  watch.Reset();
  for (int i = 0; i < kReopens; ++i) {
    auto reader =
        CheckResult(orc::OrcReader::Open(&fs, "/bench/orc"), "reopen");
    if (!reader->tail_cache_hit()) {
      std::fprintf(stderr, "FATAL: reopen missed the metadata cache\n");
      std::abort();
    }
  }
  r.warm_open_ms = watch.ElapsedMillis() / kReopens;
  r.meta_hits = caches->metadata_cache()->stats().hits;
  r.meta_misses = caches->metadata_cache()->stats().misses;
  fs.set_cache_manager(nullptr);
  return r;
}

int Main() {
  std::printf("=== Micro: session caches (block + ORC metadata) ===\n\n");
  bench::BenchReporter reporter("micro_cache");

  CoreOpsResult core = BenchCoreOps();
  ReadAtResult readat = BenchReadAt(&reporter);
  ReopenResult reopen = BenchOrcReopen();

  TablePrinter ops({"operation", "ops", "total ms", "Mops/s"});
  auto rate = [&](double ms) {
    return Fmt(ms > 0 ? core.ops / ms / 1000.0 : 0.0);
  };
  ops.AddRow({"cache insert", std::to_string(core.ops), Fmt(core.insert_ms),
              rate(core.insert_ms)});
  ops.AddRow({"cache hit", std::to_string(core.ops), Fmt(core.hit_ms),
              rate(core.hit_ms)});
  ops.AddRow({"cache miss", std::to_string(core.ops), Fmt(core.miss_ms),
              rate(core.miss_ms)});
  ops.Print();

  TablePrinter io({"pass", "ms", "physical MB", "cached MB"});
  io.AddRow({"ReadAt cold", Fmt(readat.cold_ms),
             bench::Mb(readat.physical_bytes),
             bench::Mb(readat.cold_cached_bytes)});
  io.AddRow({"ReadAt warm", Fmt(readat.warm_ms), "0.00",
             bench::Mb(readat.warm_cached_bytes)});
  io.Print();

  TablePrinter orc_t({"pass", "open ms", "meta hits", "meta misses"});
  orc_t.AddRow({"ORC cold open", Fmt(reopen.cold_open_ms), "0",
                std::to_string(reopen.meta_misses)});
  orc_t.AddRow({"ORC reopen (avg)", Fmt(reopen.warm_open_ms),
                std::to_string(reopen.meta_hits), ""});
  orc_t.Print();

  reporter.AddMetric("core.ops", core.ops, "count");
  reporter.AddMetric("core.insert_ms", core.insert_ms, "ms");
  reporter.AddMetric("core.hit_ms", core.hit_ms, "ms");
  reporter.AddMetric("core.miss_ms", core.miss_ms, "ms");
  reporter.AddMetric("readat.cold_ms", readat.cold_ms, "ms");
  reporter.AddMetric("readat.warm_ms", readat.warm_ms, "ms");
  reporter.AddMetric("readat.physical_bytes",
                     static_cast<double>(readat.physical_bytes), "bytes");
  reporter.AddMetric("readat.warm_cached_bytes",
                     static_cast<double>(readat.warm_cached_bytes), "bytes");
  reporter.AddMetric("orc.cold_open_ms", reopen.cold_open_ms, "ms");
  reporter.AddMetric("orc.reopen_ms", reopen.warm_open_ms, "ms");
  reporter.AddMetric("orc.metadata_cache_hits",
                     static_cast<double>(reopen.meta_hits), "count");
  reporter.AddMetric("orc.metadata_cache_misses",
                     static_cast<double>(reopen.meta_misses), "count");
  reporter.Write();

  std::printf("shape checks:\n");
  std::printf("  warm ReadAt fully cached: %s\n",
              readat.warm_cached_bytes ==
                      readat.physical_bytes + readat.cold_cached_bytes
                  ? "yes"
                  : "NO");
  std::printf("  warm ReadAt faster than cold: %s\n",
              readat.warm_ms < readat.cold_ms ? "yes" : "NO");
  std::printf("  every reopen hit the metadata cache: yes\n");
  return 0;
}

}  // namespace
}  // namespace minihive

int main() { return minihive::Main(); }
