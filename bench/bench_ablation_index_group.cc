// Ablation for §4.2's index-group granularity: sweep the row-index stride
// and measure index size (file overhead) versus bytes read by a selective
// query — the tradeoff the paper says "users should consider".

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/ssdb.h"
#include "orc/reader.h"
#include "orc/writer.h"

namespace minihive {
namespace {

using bench::Check;
using bench::CheckResult;
using bench::Mb;
using bench::TablePrinter;

int Main() {
  std::printf("=== Ablation: index-group stride (paper §4.2, default 10000) "
              "===\n\n");

  datagen::SsdbOptions data;
  data.tiles_per_axis = 40;
  data.pixels_per_tile = 250;

  orc::SearchArgument sarg;  // x BETWEEN 0 AND 1500 (selective).
  sarg.AddLeaf({0, orc::PredicateOp::kBetween, Value::Int(0),
                Value::Int(1500), {}});

  bench::BenchReporter reporter("ablation_index_group");
  TablePrinter table({"stride", "file MB", "index MB", "groups skipped",
                      "selective-scan MB read"});
  for (uint64_t stride : {1000, 5000, 10000, 50000}) {
    dfs::FileSystem fs;
    orc::OrcWriterOptions options;
    options.row_index_stride = stride;
    auto writer = CheckResult(
        orc::OrcWriter::Create(&fs, "/t", datagen::SsdbCycleSchema(), options),
        "create");
    for (uint64_t i = 0; i < data.TotalRows(); ++i) {
      Check(writer->AddRow(datagen::SsdbCycleRow(i, data)), "row");
    }
    Check(writer->Close(), "close");

    uint64_t index_bytes = 0;
    {
      auto reader = CheckResult(orc::OrcReader::Open(&fs, "/t"), "open");
      for (const auto& stripe : reader->tail().stripes) {
        index_bytes += stripe.index_length;
      }
    }
    fs.stats().Reset();
    orc::OrcReadOptions read_options;
    read_options.sarg = &sarg;
    read_options.projected_fields = {0, 2};
    auto reader =
        CheckResult(orc::OrcReader::Open(&fs, "/t", read_options), "open");
    Row row;
    while (true) {
      auto more = reader->NextRow(&row);
      Check(more.status(), "next");
      if (!*more) break;
    }
    table.AddRow({std::to_string(stride), Mb(*fs.FileSize("/t")),
                  Mb(index_bytes),
                  std::to_string(reader->groups_skipped()),
                  Mb(fs.stats().bytes_read.load())});
    std::string prefix = "stride_" + std::to_string(stride) + ".";
    reporter.AddMetric(prefix + "file_bytes",
                       static_cast<double>(*fs.FileSize("/t")), "bytes");
    reporter.AddMetric(prefix + "index_bytes",
                       static_cast<double>(index_bytes), "bytes");
    reporter.AddMetric(prefix + "groups_skipped",
                       static_cast<double>(reader->groups_skipped()), "groups");
    reporter.AddMetric(prefix + "scan_bytes_read",
                       static_cast<double>(fs.stats().bytes_read.load()),
                       "bytes");
  }
  table.Print();
  reporter.Write();
  std::printf("expected: smaller strides skip more precisely but grow the "
              "index; very large strides cannot skip.\n");
  return 0;
}

}  // namespace
}  // namespace minihive

int main() { return minihive::Main(); }
