// Reproduces Figure 10 of the paper: SS-DB query 1 (easy / medium / hard)
// elapsed times and bytes read from the DFS, comparing:
//   - RCFile            (4 MB row groups, no indexes)
//   - ORC File (No PPD) (large stripes, indexes ignored)
//   - ORC File (PPD)    (predicates pushed to the reader; stripe and
//                        index-group statistics skip unnecessary data)
//
// Query template (paper §7.2):
//   SELECT SUM(v1), COUNT(*) FROM cycle
//   WHERE x BETWEEN 0 AND var AND y BETWEEN 0 AND var
// var = grid/4 (easy), grid/2 (medium), grid (hard).
//
// Expected shape: ORC reads less than RCFile even without PPD (bigger
// sequential units); PPD slashes bytes read for easy/medium; for hard
// (everything matches) PPD costs only the small index overhead.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "datagen/ssdb.h"
#include "ql/driver.h"

namespace minihive {
namespace {

using bench::Check;
using bench::CheckResult;
using bench::Fmt;
using bench::Mb;
using bench::TablePrinter;

int Main() {
  dfs::FileSystem fs;
  ql::Catalog catalog(&fs);

  std::printf("=== Figure 10: SS-DB Q1 — elapsed time and DFS bytes read ===\n\n");

  datagen::SsdbOptions options;
  options.grid_size = 15000;
  options.tiles_per_axis = 50;
  options.pixels_per_tile = 320;  // 800k rows.
  options.format = formats::FormatKind::kRcFile;
  Check(datagen::LoadSsdbCycle(&catalog, "cycle_rc", options), "rc data");
  options.format = formats::FormatKind::kOrcFile;
  Check(datagen::LoadSsdbCycle(&catalog, "cycle_orc", options), "orc data");

  struct Variant {
    const char* name;
    int64_t var;
  };
  std::vector<Variant> variants = {
      {"1.easy", options.grid_size / 4},
      {"1.medium", options.grid_size / 2},
      {"1.hard", options.grid_size},
  };
  struct Config {
    const char* label;
    const char* table;
    bool ppd;
  };
  std::vector<Config> configs = {
      {"RCFile (No PPD)", "cycle_rc", false},
      {"ORC File (No PPD)", "cycle_orc", false},
      {"ORC File (PPD)", "cycle_orc", true},
  };

  bench::BenchReporter reporter("fig10_ssdb");
  const char* config_keys[3] = {"rcfile", "orc_noppd", "orc_ppd"};
  TablePrinter elapsed({"query", configs[0].label, configs[1].label,
                        configs[2].label});
  TablePrinter bytes({"query", configs[0].label, configs[1].label,
                      configs[2].label});
  double bytes_read[3][3];
  for (size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> erow = {variants[v].name};
    std::vector<std::string> brow = {variants[v].name};
    for (size_t c = 0; c < configs.size(); ++c) {
      ql::DriverOptions driver_options;
      driver_options.predicate_pushdown = configs[c].ppd;
      ql::Driver driver(&fs, &catalog, driver_options);
      std::string sql = "SELECT SUM(v1), COUNT(*) FROM " +
                        std::string(configs[c].table) + " WHERE x BETWEEN 0 AND " +
                        std::to_string(variants[v].var) +
                        " AND y BETWEEN 0 AND " +
                        std::to_string(variants[v].var);
      fs.stats().Reset();
      Stopwatch watch;
      ql::QueryResult result = CheckResult(driver.Execute(sql), "query");
      double ms = watch.ElapsedMillis();
      bytes_read[v][c] = static_cast<double>(fs.stats().bytes_read.load());
      erow.push_back(Fmt(ms, 0) + " ms");
      brow.push_back(Mb(fs.stats().bytes_read.load()) + " MB");
      std::string key = std::string(config_keys[c]) + "." +
                        (variants[v].name + 2);  // Strip the "1." prefix.
      reporter.AddMetric(key + ".elapsed_ms", ms, "ms");
      reporter.AddMetric(key + ".bytes_read", bytes_read[v][c], "bytes");
      if (result.rows.size() != 1) {
        std::fprintf(stderr, "unexpected result size\n");
        return 1;
      }
    }
    elapsed.AddRow(erow);
    bytes.AddRow(brow);
  }
  std::printf("--- Figure 10(a): elapsed times ---\n");
  elapsed.Print();
  std::printf("--- Figure 10(b): bytes read from the DFS ---\n");
  bytes.Print();
  reporter.Write();

  std::printf("shape checks:\n");
  std::printf("  easy: PPD cuts ORC bytes by %.1fx (paper: 16.91GB -> 1.07GB)\n",
              bytes_read[0][1] / bytes_read[0][2]);
  std::printf("  ORC (No PPD) <= RCFile bytes on hard: %s\n",
              bytes_read[2][1] <= bytes_read[2][0] * 1.05 ? "yes" : "NO");
  double overhead = bytes_read[2][2] / bytes_read[2][1] - 1.0;
  std::printf("  hard: PPD index overhead is small: +%.1f%% (paper: ~40MB on "
              "17GB)\n", overhead * 100);
  std::printf("  medium PPD between easy and hard: %s\n",
              bytes_read[0][2] < bytes_read[1][2] &&
                      bytes_read[1][2] < bytes_read[2][2]
                  ? "yes"
                  : "NO");
  return 0;
}

}  // namespace
}  // namespace minihive

int main() { return minihive::Main(); }
