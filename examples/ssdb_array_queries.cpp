// Array-data queries with predicate pushdown: the SS-DB scenario from the
// paper's evaluation. Shows how the ORC reader's three-level statistics
// (file / stripe / index group) turn a spatial range predicate into skipped
// I/O, and how to inspect the skipping through the reader's telemetry.

#include <cstdio>

#include "datagen/ssdb.h"
#include "orc/reader.h"
#include "ql/driver.h"

using namespace minihive;

namespace {

int Run() {
  dfs::FileSystem fs;
  ql::Catalog catalog(&fs);

  datagen::SsdbOptions data;
  data.grid_size = 15000;
  data.tiles_per_axis = 50;
  data.pixels_per_tile = 200;
  data.format = formats::FormatKind::kOrcFile;
  if (!datagen::LoadSsdbCycle(&catalog, "cycle", data).ok()) return 1;
  std::printf("loaded %llu pixels over a %lldx%lld grid (ORC)\n\n",
              static_cast<unsigned long long>(data.TotalRows()),
              static_cast<long long>(data.grid_size),
              static_cast<long long>(data.grid_size));

  // --- SQL with and without predicate pushdown.
  for (bool ppd : {false, true}) {
    ql::DriverOptions options;
    options.predicate_pushdown = ppd;
    ql::Driver driver(&fs, &catalog, options);
    fs.stats().Reset();
    auto result = driver.Execute(
        "SELECT SUM(v1), COUNT(*) FROM cycle "
        "WHERE x BETWEEN 0 AND 3750 AND y BETWEEN 0 AND 3750");
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("PPD %-3s  sum=%-12s count=%-8s  %.2f MB read, %.0f ms\n",
                ppd ? "on" : "off", result->rows[0][0].ToString().c_str(),
                result->rows[0][1].ToString().c_str(),
                fs.stats().bytes_read.load() / (1024.0 * 1024.0),
                result->elapsed_millis);
  }

  // --- The same pushdown through the ORC reader API directly.
  std::printf("\ndirect ORC reader with a SearchArgument:\n");
  orc::SearchArgument sarg;
  sarg.AddLeaf({0, orc::PredicateOp::kBetween, Value::Int(0),
                Value::Int(3750), {}});
  sarg.AddLeaf({1, orc::PredicateOp::kBetween, Value::Int(0),
                Value::Int(3750), {}});
  orc::OrcReadOptions read_options;
  read_options.sarg = &sarg;
  read_options.projected_fields = {0, 1, 2};
  auto table = catalog.GetTable("cycle");
  if (!table.ok()) return 1;
  for (const std::string& path : catalog.TableFiles(**table)) {
    auto reader = orc::OrcReader::Open(&fs, path, read_options);
    if (!reader.ok()) return 1;
    Row row;
    uint64_t rows = 0;
    while (true) {
      auto more = (*reader)->NextRow(&row);
      if (!more.ok()) return 1;
      if (!*more) break;
      ++rows;
    }
    std::printf("  %s: %llu candidate rows, stripes %llu read / %llu "
                "skipped, groups %llu read / %llu skipped\n",
                path.c_str(), static_cast<unsigned long long>(rows),
                static_cast<unsigned long long>((*reader)->stripes_read()),
                static_cast<unsigned long long>((*reader)->stripes_skipped()),
                static_cast<unsigned long long>((*reader)->groups_read()),
                static_cast<unsigned long long>((*reader)->groups_skipped()));
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
