// MiniHive quickstart: create tables in the embedded warehouse, load rows,
// and run SQL end-to-end on the in-process MapReduce engine.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: FileSystem -> Catalog ->
// loader -> Driver.

#include <cstdio>

#include "datagen/loader.h"
#include "ql/driver.h"

using namespace minihive;

namespace {

void PrintResult(const ql::QueryResult& result) {
  for (const std::string& name : result.column_names) {
    std::printf("%-24s", name.c_str());
  }
  std::printf("\n");
  for (const Row& row : result.rows) {
    for (const Value& v : row) {
      std::printf("%-24s", v.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows, %d job%s, %.0f ms)\n\n", result.rows.size(),
              result.num_jobs, result.num_jobs == 1 ? "" : "s",
              result.elapsed_millis);
}

int Run() {
  // 1. An in-process DFS and a metastore.
  dfs::FileSystem fs;
  ql::Catalog catalog(&fs);

  // 2. Create and load two tables. `employees` uses the ORC file format,
  //    the paper's storage contribution; `departments` stays plain text.
  auto employees_schema = *TypeDescription::Parse(
      "struct<id:bigint,name:string,dept_id:bigint,salary:double>");
  std::vector<Row> employees;
  const char* names[] = {"ada", "grace", "edsger", "barbara", "donald",
                         "tony", "leslie", "john"};
  for (int i = 0; i < 800; ++i) {
    employees.push_back({Value::Int(i),
                         Value::String(std::string(names[i % 8]) + "-" +
                                       std::to_string(i)),
                         Value::Int(i % 4),
                         Value::Double(50000 + (i % 37) * 997.0)});
  }
  if (!datagen::CreateAndLoad(&catalog, "employees", employees_schema,
                              formats::FormatKind::kOrcFile,
                              codec::CompressionKind::kFastLz, employees)
           .ok()) {
    return 1;
  }

  auto departments_schema =
      *TypeDescription::Parse("struct<dept_id:bigint,dept_name:string>");
  std::vector<Row> departments = {
      {Value::Int(0), Value::String("storage")},
      {Value::Int(1), Value::String("planner")},
      {Value::Int(2), Value::String("execution")},
      {Value::Int(3), Value::String("metastore")},
  };
  if (!datagen::CreateAndLoad(&catalog, "departments", departments_schema,
                              formats::FormatKind::kTextFile,
                              codec::CompressionKind::kNone, departments)
           .ok()) {
    return 1;
  }

  // 3. A Driver with all three of the paper's advancements enabled.
  ql::DriverOptions options;
  options.correlation_optimizer = true;
  options.vectorized_execution = true;
  ql::Driver driver(&fs, &catalog, options);

  // Filter + projection (vectorized over the ORC table).
  auto r1 = driver.Execute(
      "SELECT name, salary FROM employees WHERE salary > 85000 LIMIT 5");
  if (!r1.ok()) {
    std::fprintf(stderr, "%s\n", r1.status().ToString().c_str());
    return 1;
  }
  std::printf("-- high earners --\n");
  PrintResult(*r1);

  // Join + aggregation + order (map join for the small dimension).
  auto r2 = driver.Execute(
      "SELECT dept_name, COUNT(*) AS headcount, AVG(salary) AS avg_salary "
      "FROM employees JOIN departments "
      "  ON employees.dept_id = departments.dept_id "
      "GROUP BY dept_name ORDER BY dept_name");
  if (!r2.ok()) {
    std::fprintf(stderr, "%s\n", r2.status().ToString().c_str());
    return 1;
  }
  std::printf("-- department stats --\n");
  PrintResult(*r2);

  // Simple aggregations over ORC tables are answered from file statistics
  // alone — zero MapReduce jobs (paper 4.2).
  auto r3 = driver.Execute(
      "SELECT COUNT(*), MIN(salary), MAX(salary) FROM employees");
  if (r3.ok()) {
    std::printf("-- metadata-only aggregation (%d jobs) --\n", r3->num_jobs);
    PrintResult(*r3);
  }

  // Explain shows the compiled MapReduce job DAG.
  auto plan = driver.Explain(
      "SELECT dept_id, SUM(salary) FROM employees GROUP BY dept_id");
  if (plan.ok()) {
    std::printf("-- plan for a grouped aggregate --\n%s\n",
                plan->plan_text.c_str());
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
