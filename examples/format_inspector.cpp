// ORC file inspector (an `orcfiledump` analogue): writes a small file with
// every type family — including the paper's Figure 3 nested schema — then
// dumps its physical layout: stripes, per-column statistics at file and
// stripe level, compression, and the column tree with pre-order ids.

#include <cstdio>

#include "common/random.h"
#include "orc/reader.h"
#include "orc/writer.h"

using namespace minihive;

namespace {

void PrintColumnTree(const TypeDescription& type, const std::string& name,
                     int indent) {
  std::printf("%*scolumn %-2d %-10s %s\n", indent, "", type.column_id(),
              TypeKindName(type.kind()), name.c_str());
  const auto& names = type.field_names();
  for (size_t i = 0; i < type.children().size(); ++i) {
    std::string child_name;
    if (type.kind() == TypeKind::kStruct || type.kind() == TypeKind::kUnion) {
      child_name = i < names.size() ? names[i] : "";
    } else if (type.kind() == TypeKind::kArray) {
      child_name = "<element>";
    } else {
      child_name = i == 0 ? "<key>" : "<value>";
    }
    PrintColumnTree(*type.children()[i], child_name, indent + 2);
  }
}

int Run() {
  dfs::FileSystem fs;

  // The paper's Figure 3 example schema.
  TypePtr schema = *TypeDescription::Parse(
      "struct<col1:int,col2:array<int>,"
      "col4:map<string,struct<col7:string,col8:int>>,col9:string>");

  orc::OrcWriterOptions options;
  options.compression = codec::CompressionKind::kFastLz;
  options.stripe_size = 256 * 1024;
  options.row_index_stride = 1000;
  auto writer = orc::OrcWriter::Create(&fs, "/example.orc", schema, options);
  if (!writer.ok()) return 1;
  Random rng(99);
  for (int i = 0; i < 50000; ++i) {
    Value::Array arr;
    for (uint64_t j = 0; j < rng.Uniform(4); ++j) {
      arr.push_back(Value::Int(rng.Range(0, 1000)));
    }
    Value::MapEntries map;
    if (rng.Bernoulli(0.7)) {
      map.push_back({Value::String("k" + std::to_string(rng.Uniform(5))),
                     Value::MakeStruct({Value::String(rng.NextString(6)),
                                        Value::Int(i)})});
    }
    Row row = {Value::Int(i), Value::MakeArray(std::move(arr)),
               Value::MakeMap(std::move(map)),
               Value::String("row-" + std::to_string(i % 100))};
    if (!(*writer)->AddRow(row).ok()) return 1;
  }
  if (!(*writer)->Close().ok()) return 1;

  auto reader = orc::OrcReader::Open(&fs, "/example.orc");
  if (!reader.ok()) return 1;
  const orc::FileTail& tail = (*reader)->tail();

  std::printf("file /example.orc\n");
  std::printf("  size:            %llu bytes\n",
              static_cast<unsigned long long>(*fs.FileSize("/example.orc")));
  std::printf("  rows:            %llu\n",
              static_cast<unsigned long long>(tail.num_rows));
  std::printf("  compression:     %s (unit %llu bytes)\n",
              codec::CompressionKindName(tail.compression),
              static_cast<unsigned long long>(tail.compression_unit));
  std::printf("  row index stride:%llu\n",
              static_cast<unsigned long long>(tail.row_index_stride));
  std::printf("  tail bytes:      %llu\n\n",
              static_cast<unsigned long long>(tail.tail_length));

  std::printf("column tree (paper Figure 3 decomposition):\n");
  PrintColumnTree(*tail.schema, "<root>", 2);

  std::printf("\nstripes:\n");
  for (size_t s = 0; s < tail.stripes.size(); ++s) {
    const orc::StripeInformation& stripe = tail.stripes[s];
    std::printf("  stripe %zu: offset=%llu rows=%llu index=%llu data=%llu "
                "footer=%llu\n",
                s, static_cast<unsigned long long>(stripe.offset),
                static_cast<unsigned long long>(stripe.num_rows),
                static_cast<unsigned long long>(stripe.index_length),
                static_cast<unsigned long long>(stripe.data_length),
                static_cast<unsigned long long>(stripe.footer_length));
  }

  std::printf("\nfile-level column statistics:\n");
  std::vector<const TypeDescription*> columns;
  tail.schema->Flatten(&columns);
  for (size_t c = 0; c < tail.file_stats.size(); ++c) {
    std::printf("  col %-2zu (%s): %s\n", c, TypeKindName(columns[c]->kind()),
                tail.file_stats[c].ToString().c_str());
  }

  std::printf("\nstripe 0 column statistics:\n");
  if (!tail.stripe_stats.empty()) {
    for (size_t c = 0; c < tail.stripe_stats[0].size(); ++c) {
      std::printf("  col %-2zu: %s\n", c,
                  tail.stripe_stats[0][c].ToString().c_str());
    }
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
