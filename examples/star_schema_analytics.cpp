// Star-schema analytics: the workload the paper's planner advancements
// target. Loads a TPC-DS-shaped warehouse and runs the same business
// question under four planner configurations, printing the job DAGs so the
// effect of each optimization is visible.

#include <cstdio>

#include "datagen/tpcds.h"
#include "ql/driver.h"

using namespace minihive;

namespace {

const char kStarQuery[] =
    "SELECT i_category, s_state, COUNT(*) AS sales, "
    "       AVG(ss_sales_price) AS avg_price "
    "FROM tpcds_store_sales "
    "JOIN tpcds_item ON tpcds_store_sales.ss_item_sk = tpcds_item.i_item_sk "
    "JOIN tpcds_store ON tpcds_store_sales.ss_store_sk = "
    "                    tpcds_store.s_store_sk "
    "WHERE i_category IN ('Books', 'Music') "
    "GROUP BY i_category, s_state ORDER BY i_category, s_state";

int Run() {
  dfs::FileSystem fs;
  ql::Catalog catalog(&fs);
  datagen::TpcdsOptions data;
  data.store_sales_rows = 100000;
  if (!datagen::LoadTpcds(&catalog, "tpcds", data).ok()) return 1;

  struct Config {
    const char* label;
    bool mapjoin;
    bool merge;
    bool correlation;
  };
  Config configs[] = {
      {"original translation (reduce joins, one job per operation)", false,
       false, false},
      {"+ map joins (each in its own Map-only job)", true, false, false},
      {"+ unnecessary-Map-phase elimination (paper 5.1)", true, true, false},
      {"+ correlation optimizer (paper 5.2)", true, true, true},
  };

  for (const Config& config : configs) {
    ql::DriverOptions options;
    options.mapjoin_conversion = config.mapjoin;
    options.mapjoin_threshold_bytes = 1 << 20;
    options.merge_maponly_jobs = config.merge;
    options.correlation_optimizer = config.correlation;
    ql::Driver driver(&fs, &catalog, options);
    auto result = driver.Execute(kStarQuery);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("=== %s ===\n", config.label);
    std::printf("jobs: %d (map-only: %d), elapsed %.0f ms, "
                "shuffled %.2f MB\n",
                result->num_jobs, result->num_map_only_jobs,
                result->elapsed_millis,
                result->counters.shuffled_bytes.load() / (1024.0 * 1024.0));
    for (const auto& job : result->jobs) {
      std::printf("  %-18s %6.0f ms  (%d map / %d reduce tasks)\n",
                  job.name.c_str(), job.elapsed_millis, job.map_tasks,
                  job.reduce_tasks);
    }
    if (&config == &configs[3]) {
      std::printf("\nresults:\n");
      for (const Row& row : result->rows) {
        std::printf("  %-14s %-4s sales=%-7s avg_price=%s\n",
                    row[0].ToString().c_str(), row[1].ToString().c_str(),
                    row[2].ToString().c_str(), row[3].ToString().c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
