// Plan-shape tests: what the analyzer + optimizers + task compiler produce,
// verified through Explain (no execution).

#include <gtest/gtest.h>

#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

class PlanShapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<dfs::FileSystem>();
    catalog_ = std::make_unique<Catalog>(fs_.get());
    auto fact_schema = *TypeDescription::Parse(
        "struct<k:bigint,v:double,s:string>");
    std::vector<Row> fact;
    for (int i = 0; i < 3000; ++i) {
      fact.push_back({Value::Int(i % 100), Value::Double(i * 0.5),
                      Value::String("s" + std::to_string(i % 7))});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(catalog_.get(), "fact", fact_schema,
                                       formats::FormatKind::kTextFile,
                                       codec::CompressionKind::kNone, fact)
                    .ok());
    std::vector<Row> dim;
    for (int i = 0; i < 100; ++i) {
      dim.push_back({Value::Int(i), Value::String("d" + std::to_string(i))});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "dim",
                    *TypeDescription::Parse("struct<k:bigint,name:string>"),
                    formats::FormatKind::kTextFile,
                    codec::CompressionKind::kNone, dim)
                    .ok());
  }

  QueryResult Plan(const std::string& sql, DriverOptions options) {
    Driver driver(fs_.get(), catalog_.get(), options);
    auto result = driver.Explain(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).ValueOrDie() : QueryResult();
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(PlanShapeTest, ScanFilterIsSingleMapOnlyJob) {
  QueryResult plan =
      Plan("SELECT k FROM fact WHERE k < 5", DriverOptions());
  EXPECT_EQ(plan.num_jobs, 1);
  EXPECT_EQ(plan.num_map_only_jobs, 1);
  EXPECT_NE(plan.plan_text.find("TS_"), std::string::npos);
  EXPECT_NE(plan.plan_text.find("FIL_"), std::string::npos);
  EXPECT_EQ(plan.plan_text.find("JOIN"), std::string::npos);
}

TEST_F(PlanShapeTest, GroupByIsOneMapReduceJob) {
  QueryResult plan =
      Plan("SELECT k, SUM(v) FROM fact GROUP BY k", DriverOptions());
  EXPECT_EQ(plan.num_jobs, 1);
  EXPECT_EQ(plan.num_map_only_jobs, 0);
  // Map-side partial then reduce-side merge.
  EXPECT_NE(plan.plan_text.find("mode=hash"), std::string::npos);
  EXPECT_NE(plan.plan_text.find("mode=mergepartial"), std::string::npos);
}

TEST_F(PlanShapeTest, GroupByThenOrderByIsTwoJobs) {
  QueryResult plan = Plan(
      "SELECT k, SUM(v) AS total FROM fact GROUP BY k ORDER BY total DESC",
      DriverOptions());
  EXPECT_EQ(plan.num_jobs, 2);  // Aggregate job + single-reducer sort job.
}

TEST_F(PlanShapeTest, ReduceJoinKeepsBothScansInOneJob) {
  DriverOptions options;
  options.mapjoin_conversion = false;
  QueryResult plan = Plan(
      "SELECT fact.k FROM fact JOIN dim ON fact.k = dim.k", options);
  EXPECT_EQ(plan.num_jobs, 1);
  EXPECT_NE(plan.plan_text.find("JOIN_"), std::string::npos);
  // Two tagged ReduceSinks feed the join.
  EXPECT_NE(plan.plan_text.find("tag=0"), std::string::npos);
  EXPECT_NE(plan.plan_text.find("tag=1"), std::string::npos);
}

TEST_F(PlanShapeTest, MapJoinConversionRemovesReduceJoin) {
  DriverOptions options;
  options.mapjoin_conversion = true;
  options.merge_maponly_jobs = true;
  QueryResult plan = Plan(
      "SELECT fact.k FROM fact JOIN dim ON fact.k = dim.k", options);
  EXPECT_EQ(plan.num_jobs, 1);
  EXPECT_EQ(plan.num_map_only_jobs, 1);
  EXPECT_NE(plan.plan_text.find("MAPJOIN_"), std::string::npos);
  // No *reduce* join remains (the op name is preceded by indentation; a
  // bare "JOIN_" also matches inside "MAPJOIN_").
  EXPECT_EQ(plan.plan_text.find(" JOIN_"), std::string::npos);
}

TEST_F(PlanShapeTest, UnmergedConversionLeavesMapOnlyJob) {
  DriverOptions options;
  options.mapjoin_conversion = true;
  options.merge_maponly_jobs = false;
  QueryResult plan = Plan(
      "SELECT fact.k, SUM(fact.v) FROM fact JOIN dim ON fact.k = dim.k "
      "GROUP BY fact.k",
      options);
  // Map-only job with the map join + the aggregation MapReduce job.
  EXPECT_EQ(plan.num_jobs, 2);
  EXPECT_EQ(plan.num_map_only_jobs, 1);
}

TEST_F(PlanShapeTest, CorrelationMergesJoinAndAggregation) {
  DriverOptions off;
  off.mapjoin_conversion = false;
  off.correlation_optimizer = false;
  QueryResult baseline = Plan(
      "SELECT fact.k, COUNT(*) FROM fact JOIN dim ON fact.k = dim.k "
      "GROUP BY fact.k",
      off);
  DriverOptions on = off;
  on.correlation_optimizer = true;
  QueryResult optimized = Plan(
      "SELECT fact.k, COUNT(*) FROM fact JOIN dim ON fact.k = dim.k "
      "GROUP BY fact.k",
      on);
  EXPECT_EQ(baseline.num_jobs, 2);
  EXPECT_EQ(optimized.num_jobs, 1);
  EXPECT_NE(optimized.plan_text.find("DEMUX_"), std::string::npos);
  EXPECT_NE(optimized.plan_text.find("MUX_"), std::string::npos);
  EXPECT_EQ(baseline.plan_text.find("DEMUX_"), std::string::npos);
}

TEST_F(PlanShapeTest, ConsecutiveShufflesMaterializeIntermediates) {
  DriverOptions options;
  options.mapjoin_conversion = false;
  QueryResult plan = Plan(
      "SELECT s, COUNT(*) FROM (SELECT fact.s AS s FROM fact JOIN dim "
      "ON fact.k = dim.k) j GROUP BY s",
      options);
  // Join job writes an intermediate the aggregation job re-loads — the §2
  // translation behaviour the paper criticizes.
  EXPECT_EQ(plan.num_jobs, 2);
  EXPECT_NE(plan.plan_text.find("inter-"), std::string::npos);
}

TEST_F(PlanShapeTest, AnalyzerErrors) {
  Driver driver(fs_.get(), catalog_.get(), DriverOptions());
  // Ambiguous unqualified column (k exists in both tables).
  EXPECT_FALSE(driver.Explain("SELECT k FROM fact JOIN dim ON fact.k = dim.k")
                   .ok());
  // Non-grouped column in an aggregate query.
  EXPECT_FALSE(driver.Explain("SELECT v, COUNT(*) FROM fact GROUP BY k").ok());
  // Join without an equi-condition.
  EXPECT_FALSE(driver.Explain(
                         "SELECT fact.k FROM fact JOIN dim ON fact.k > dim.k")
                   .ok());
  // ORDER BY expression not in the select list.
  EXPECT_FALSE(driver.Explain("SELECT k FROM fact ORDER BY v").ok());
}

TEST_F(PlanShapeTest, PushdownPrunesScanColumns) {
  DriverOptions options;
  QueryResult plan = Plan("SELECT k FROM fact WHERE v > 10", options);
  // Projection should mention only the two used columns; the plan debug
  // text shows the table scan. (Indirect check: the query still plans to
  // one map-only job; pruning specifics are covered by the ORC I/O tests.)
  EXPECT_EQ(plan.num_jobs, 1);
}

}  // namespace
}  // namespace minihive::ql
