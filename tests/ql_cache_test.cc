// End-to-end session cache behaviour: a query run twice in one Driver
// session hits both the block cache and the ORC metadata cache on the
// second run, with byte-identical results, and the cache is observable in
// EXPLAIN PROFILE and the split IoStats. Also: fault-tainted reads must
// never populate the caches.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/cache.h"
#include "common/fault.h"
#include "common/json.h"
#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

constexpr const char* kScanSql =
    "SELECT l_orderkey, SUM(l_amount) AS total FROM lineitem "
    "WHERE l_quantity > 2 GROUP BY l_orderkey ORDER BY l_orderkey";

class QlCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<dfs::FileSystem>();
    catalog_ = std::make_unique<Catalog>(fs_.get());
    std::vector<Row> rows;
    for (int i = 0; i < 4000; ++i) {
      rows.push_back({Value::Int(i % 200), Value::Int(i % 7),
                      Value::Double((i % 90) * 1.25)});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "lineitem",
                    *TypeDescription::Parse("struct<l_orderkey:bigint,"
                                            "l_quantity:bigint,"
                                            "l_amount:double>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, rows, 4)
                    .ok());
  }

  QueryResult MustExecute(Driver* driver, const std::string& sql) {
    auto result = driver->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    if (!result.ok()) return QueryResult();
    return std::move(result).ValueOrDie();
  }

  // Extracts the integer value of `key` from the profile's JSON (the cache
  // attrs appear exactly once, on the query root span).
  static uint64_t ProfileAttr(const telemetry::Span* profile,
                              const std::string& key) {
    json::Writer writer;
    profile->WriteJson(&writer, /*include_timing=*/false);
    const std::string text = writer.str();
    const std::string needle = "\"" + key + "\": ";
    size_t pos = text.find(needle);
    EXPECT_NE(pos, std::string::npos) << key << " missing in " << text;
    if (pos == std::string::npos) return 0;
    return std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
  }

  static std::string RowsToString(const std::vector<Row>& rows) {
    std::string out;
    for (const Row& row : rows) {
      for (const Value& v : row) out += v.ToString() + "|";
      out += "\n";
    }
    return out;
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(QlCacheTest, SecondRunHitsBothCachesWithIdenticalResults) {
  std::string cached_first, cached_second;
  {
    Driver driver(fs_.get(), catalog_.get());
    QueryResult first =
        MustExecute(&driver, std::string("EXPLAIN PROFILE ") + kScanSql);
    ASSERT_NE(first.profile, nullptr);
    cached_first = RowsToString(first.rows);
    uint64_t first_meta_hits =
        ProfileAttr(first.profile.get(), "metadata_cache_hits");

    QueryResult second =
        MustExecute(&driver, std::string("EXPLAIN PROFILE ") + kScanSql);
    ASSERT_NE(second.profile, nullptr);
    cached_second = RowsToString(second.rows);

    // The acceptance check: rerunning in the same session hits both cache
    // levels, visibly in the profile.
    EXPECT_GT(ProfileAttr(second.profile.get(), "block_cache_hits"), 0u);
    EXPECT_GT(ProfileAttr(second.profile.get(), "metadata_cache_hits"),
              first_meta_hits);
    EXPECT_EQ(cached_first, cached_second);

    // The IoStats split accounts every byte: physical + cached == total.
    const dfs::IoStats& stats = fs_->stats();
    EXPECT_EQ(stats.bytes_read_physical.load() +
                  stats.bytes_read_cached.load(),
              stats.bytes_read.load());
    EXPECT_GT(stats.bytes_read_cached.load(), 0u);
  }  // Driver destroyed: its caches are uninstalled from the filesystem.

  // Cache fully disabled: results must be byte-identical.
  DriverOptions no_cache;
  no_cache.block_cache_bytes = 0;
  no_cache.metadata_cache_bytes = 0;
  Driver cold_driver(fs_.get(), catalog_.get(), no_cache);
  QueryResult cold = MustExecute(&cold_driver, kScanSql);
  EXPECT_EQ(RowsToString(cold.rows), cached_first);

  QueryResult cold2 =
      MustExecute(&cold_driver, std::string("EXPLAIN PROFILE ") + kScanSql);
  ASSERT_NE(cold2.profile, nullptr);
  // No caches installed: the profile reports no cache attrs at all.
  json::Writer writer;
  cold2.profile->WriteJson(&writer, /*include_timing=*/false);
  EXPECT_EQ(writer.str().find("block_cache_hits"), std::string::npos);
}

TEST_F(QlCacheTest, FaultTaintedReadsDoNotPopulateCaches) {
  // Every read is delayed (tainted): the fault model says those bytes took
  // the slow path, so they must not seed the cache — a retry after a
  // straggler kill must re-experience the injected behaviour.
  FaultConfig config;
  config.seed = 42;
  config.read_delay_probability = 1.0;
  config.delay_millis = 1;
  FaultInjector injector(config);
  fs_->set_fault_injector(&injector);

  Driver driver(fs_.get(), catalog_.get());
  QueryResult result = MustExecute(&driver, kScanSql);
  EXPECT_FALSE(result.rows.empty());
  EXPECT_GT(injector.stats().read_delays.load(), 0u);

  std::shared_ptr<cache::CacheManager> caches = fs_->cache_manager();
  ASSERT_NE(caches, nullptr);
  EXPECT_EQ(caches->block_cache()->usage(), 0u);
  EXPECT_EQ(caches->metadata_cache()->usage(), 0u);

  // Clean reads populate again once the injector is gone.
  fs_->set_fault_injector(nullptr);
  MustExecute(&driver, kScanSql);
  EXPECT_GT(caches->block_cache()->usage(), 0u);
  EXPECT_GT(caches->metadata_cache()->usage(), 0u);
}

}  // namespace
}  // namespace minihive::ql
