/// Map-join memory guard and the reduce-join backup plan (paper §5.1's
/// backup-task protocol). A map-join hash build that exceeds the session's
/// memory budget fails with a typed ResourceExhausted; the driver must then
/// transparently re-execute the query on the pre-conversion reduce-join
/// plan and produce byte-identical results, surfacing the event as a
/// nonzero mapjoin_fallbacks counter (and in EXPLAIN PROFILE).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fault.h"
#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

std::vector<std::string> Canonicalize(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class MapJoinFallbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<dfs::FileSystem>();
    catalog_ = std::make_unique<Catalog>(fs_.get());

    std::vector<Row> orders;
    for (int i = 0; i < 2000; ++i) {
      orders.push_back({Value::Int(i), Value::Int(i % 64),
                        Value::Double((i % 53) * 1.5)});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "orders",
                    *TypeDescription::Parse("struct<o_id:bigint,"
                                            "o_custkey:bigint,"
                                            "o_amount:double>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, orders)
                    .ok());

    std::vector<Row> customers;
    for (int i = 0; i < 64; ++i) {
      customers.push_back({Value::Int(i),
                           Value::String("cust-" + std::to_string(i)),
                           Value::String(i % 4 == 0 ? "gold" : "basic")});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "customers",
                    *TypeDescription::Parse("struct<c_id:bigint,"
                                            "c_name:string,"
                                            "c_segment:string>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, customers)
                    .ok());
  }

  void TearDown() override { fs_->set_fault_injector(nullptr); }

  static constexpr const char* kJoinSql =
      "SELECT c_segment, COUNT(*) AS cnt, SUM(o_amount) AS total "
      "FROM orders JOIN customers ON o_custkey = c_id "
      "GROUP BY c_segment";

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(MapJoinFallbackTest, BudgetExceededFallsBackToReduceJoin) {
  // Golden answer: the reduce join, forced by disabling conversion.
  DriverOptions reduce_options;
  reduce_options.mapjoin_conversion = false;
  Driver reduce_driver(fs_.get(), catalog_.get(), reduce_options);
  auto want = reduce_driver.Execute(kJoinSql);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_FALSE(want->rows.empty());
  EXPECT_EQ(want->counters.mapjoin_fallbacks.load(), 0u);

  // The primary plan converts the join; sanity-check that it really would
  // run as a map join.
  DriverOptions options;
  options.mapjoin_memory_budget_bytes = 64;  // Far below the build size.
  Driver driver(fs_.get(), catalog_.get(), options);
  auto explain = driver.Explain(kJoinSql);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->plan_text.find("MAPJOIN"), std::string::npos)
      << explain->plan_text;

  // Execution blows the budget, falls back, and still answers correctly.
  auto got = driver.Execute(kJoinSql);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Canonicalize(got->rows), Canonicalize(want->rows));
  EXPECT_EQ(got->counters.mapjoin_fallbacks.load(), 1u);
  EXPECT_TRUE(fs_->List("/tmp/").empty())
      << "fallback left temp files from the abandoned map-join run";

  // The fallback is visible in EXPLAIN PROFILE's rendered span tree.
  auto profiled = driver.Execute(std::string("EXPLAIN PROFILE ") + kJoinSql);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  EXPECT_NE(profiled->plan_text.find("mapjoin_fallbacks=1"),
            std::string::npos)
      << profiled->plan_text;
}

TEST_F(MapJoinFallbackTest, GenerousBudgetDoesNotFallBack) {
  DriverOptions options;
  options.mapjoin_memory_budget_bytes = 64ULL * 1024 * 1024;
  Driver driver(fs_.get(), catalog_.get(), options);
  auto got = driver.Execute(kJoinSql);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->counters.mapjoin_fallbacks.load(), 0u);
  EXPECT_FALSE(got->rows.empty());
}

TEST_F(MapJoinFallbackTest, LocalTaskRetriesAreCountedInJobReport) {
  // Read errors targeted at the small table make the map-join local task
  // (hash build) fail and retry; those attempts and their wall time must be
  // visible in the JobReport, separately from engine task failures.
  bool saw_recovered_local_failure = false;
  for (int seed = 0; seed < 20 && !saw_recovered_local_failure; ++seed) {
    FaultConfig faults;
    faults.seed = 100 + seed;
    faults.read_error_probability = 0.10;
    faults.path_filter = "/warehouse/customers";
    FaultInjector injector(faults);
    fs_->set_fault_injector(&injector);

    Driver driver(fs_.get(), catalog_.get(), DriverOptions());
    auto got = driver.Execute(kJoinSql);
    fs_->set_fault_injector(nullptr);
    if (!got.ok()) continue;  // Retries exhausted: acceptable, try next seed.

    uint64_t local_failures = 0;
    double local_millis = 0;
    for (const JobReport& report : got->jobs) {
      local_failures += report.local_task_failures;
      local_millis += report.local_task_millis;
    }
    EXPECT_EQ(local_failures, got->counters.local_task_failures.load());
    if (local_failures > 0) {
      saw_recovered_local_failure = true;
      EXPECT_GT(local_millis, 0.0);
    }
  }
  EXPECT_TRUE(saw_recovered_local_failure)
      << "no seed exercised a recovered local-task retry";
}

}  // namespace
}  // namespace minihive::ql
