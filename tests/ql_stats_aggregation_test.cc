// Tests for the §4.2 metadata-only aggregation path: simple aggregates over
// unfiltered ORC tables are answered from file statistics with zero jobs,
// and the answers match a real scan.

#include <gtest/gtest.h>

#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

class StatsAggregationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<dfs::FileSystem>();
    catalog_ = std::make_unique<Catalog>(fs_.get());
    std::vector<Row> rows;
    for (int i = 0; i < 5000; ++i) {
      rows.push_back({Value::Int(i),
                      i % 11 == 0 ? Value::Null() : Value::Double(i * 0.25),
                      Value::String("s" + std::to_string(i % 13))});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "orc_t",
                    *TypeDescription::Parse(
                        "struct<a:bigint,b:double,c:string>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kFastLz, rows, 3)
                    .ok());
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "text_t",
                    *TypeDescription::Parse(
                        "struct<a:bigint,b:double,c:string>"),
                    formats::FormatKind::kTextFile,
                    codec::CompressionKind::kNone, rows, 3)
                    .ok());
  }

  QueryResult Execute(const std::string& sql, bool stats_enabled) {
    DriverOptions options;
    options.stats_aggregation = stats_enabled;
    Driver driver(fs_.get(), catalog_.get(), options);
    auto result = driver.Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).ValueOrDie() : QueryResult();
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(StatsAggregationTest, AnswersWithoutRunningJobs) {
  const std::string sql =
      "SELECT COUNT(*), COUNT(b), MIN(a), MAX(a), SUM(a), AVG(b), MIN(c), "
      "MAX(c) FROM orc_t";
  fs_->stats().Reset();
  QueryResult fast = Execute(sql, true);
  EXPECT_EQ(fast.num_jobs, 0) << "should be answered from metadata";
  // Only file tails were read.
  uint64_t tail_bytes = fs_->stats().bytes_read.load();
  EXPECT_LT(tail_bytes, 64u * 1024) << "a stats answer must not scan data";

  QueryResult slow = Execute(sql, false);
  EXPECT_GT(slow.num_jobs, 0);
  ASSERT_EQ(fast.rows.size(), 1u);
  ASSERT_EQ(slow.rows.size(), 1u);
  for (size_t c = 0; c < fast.rows[0].size(); ++c) {
    if (fast.rows[0][c].is_double()) {
      EXPECT_NEAR(fast.rows[0][c].AsDouble(), slow.rows[0][c].AsDouble(),
                  1e-6)
          << "column " << c;
    } else {
      EXPECT_EQ(fast.rows[0][c].Compare(slow.rows[0][c]), 0) << "column " << c;
    }
  }
  EXPECT_EQ(fast.rows[0][0].AsInt(), 5000);
  EXPECT_EQ(fast.rows[0][1].AsInt(), 5000 - 455);  // 455 NULLs (i % 11 == 0).
}

TEST_F(StatsAggregationTest, FilteredQueryStillScans) {
  QueryResult result = Execute("SELECT COUNT(*) FROM orc_t WHERE a > 100",
                               true);
  EXPECT_GT(result.num_jobs, 0);
  EXPECT_EQ(result.rows[0][0].AsInt(), 4899);
}

TEST_F(StatsAggregationTest, GroupedQueryStillScans) {
  QueryResult result =
      Execute("SELECT c, COUNT(*) FROM orc_t GROUP BY c", true);
  EXPECT_GT(result.num_jobs, 0);
  EXPECT_EQ(result.rows.size(), 13u);
}

TEST_F(StatsAggregationTest, NonOrcTableStillScans) {
  QueryResult result = Execute("SELECT COUNT(*) FROM text_t", true);
  EXPECT_GT(result.num_jobs, 0);
  EXPECT_EQ(result.rows[0][0].AsInt(), 5000);
}

TEST_F(StatsAggregationTest, ComputedAggregateArgumentStillScans) {
  QueryResult result = Execute("SELECT SUM(a * 2) FROM orc_t", true);
  EXPECT_GT(result.num_jobs, 0);
  EXPECT_EQ(result.rows[0][0].AsInt(), 2LL * 4999 * 5000 / 2);
}

TEST_F(StatsAggregationTest, ExpressionOverAggregates) {
  // Final projections over the aggregates still evaluate (MAX - MIN).
  QueryResult result =
      Execute("SELECT MAX(a) - MIN(a) AS spread FROM orc_t", true);
  EXPECT_EQ(result.num_jobs, 0);
  EXPECT_EQ(result.rows[0][0].AsInt(), 4999);
}

}  // namespace
}  // namespace minihive::ql
