#include "serde/serde.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace minihive::serde {
namespace {

TypePtr FlatSchema() {
  return *TypeDescription::Parse(
      "struct<id:bigint,name:string,score:double,flag:boolean>");
}

TypePtr NestedSchema() {
  return *TypeDescription::Parse(
      "struct<col1:int,col2:array<int>,"
      "col4:map<string,struct<col7:string,col8:int>>,col9:string>");
}

Row NestedRow() {
  Value inner1 = Value::MakeStruct({Value::String("s1"), Value::Int(10)});
  Value inner2 = Value::MakeStruct({Value::String("s2"), Value::Null()});
  return {
      Value::Int(7),
      Value::MakeArray({Value::Int(1), Value::Int(2), Value::Int(3)}),
      Value::MakeMap({{Value::String("k1"), inner1},
                      {Value::String("k2"), inner2}}),
      Value::String("tail"),
  };
}

template <typename SerDe>
void ExpectRoundTrip(const SerDe& serde, const Row& row) {
  std::string encoded;
  ASSERT_TRUE(serde.Serialize(row, &encoded).ok());
  Row decoded;
  ASSERT_TRUE(serde.Deserialize(encoded, {}, &decoded).ok());
  ASSERT_EQ(decoded.size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(decoded[i].Compare(row[i]), 0)
        << "col " << i << ": " << decoded[i].ToString() << " vs "
        << row[i].ToString();
  }
}

TEST(TextSerDeTest, FlatRoundTrip) {
  TextSerDe serde(FlatSchema());
  ExpectRoundTrip(serde, {Value::Int(42), Value::String("alice"),
                          Value::Double(3.5), Value::Bool(true)});
}

TEST(TextSerDeTest, NullsRoundTrip) {
  TextSerDe serde(FlatSchema());
  ExpectRoundTrip(serde,
                  {Value::Null(), Value::Null(), Value::Null(), Value::Null()});
}

TEST(TextSerDeTest, NestedRoundTrip) {
  TextSerDe serde(NestedSchema());
  ExpectRoundTrip(serde, NestedRow());
}

TEST(TextSerDeTest, ProjectionSkipsUnrequestedColumns) {
  TextSerDe serde(FlatSchema());
  Row row = {Value::Int(1), Value::String("bob"), Value::Double(2.5),
             Value::Bool(false)};
  std::string encoded;
  ASSERT_TRUE(serde.Serialize(row, &encoded).ok());
  Row decoded;
  ASSERT_TRUE(serde.Deserialize(encoded, {1, 3}, &decoded).ok());
  EXPECT_TRUE(decoded[0].is_null());   // Not projected.
  EXPECT_EQ(decoded[1].AsString(), "bob");
  EXPECT_TRUE(decoded[2].is_null());
  EXPECT_EQ(decoded[3].AsBool(), false);
}

TEST(TextSerDeTest, NegativeNumbersAndEmptyString) {
  TextSerDe serde(FlatSchema());
  ExpectRoundTrip(serde, {Value::Int(-99), Value::String(""),
                          Value::Double(-0.25), Value::Bool(false)});
}

TEST(TextSerDeTest, EmptyArrayAndMap) {
  TextSerDe serde(NestedSchema());
  ExpectRoundTrip(serde, {Value::Int(0), Value::MakeArray({}),
                          Value::MakeMap({}), Value::String("x")});
}

TEST(TextSerDeTest, RejectsMalformedInteger) {
  TextSerDe serde(FlatSchema());
  Row decoded;
  EXPECT_FALSE(serde.Deserialize("abc\x01name\x01\x31\x01true", {}, &decoded)
                   .ok());
}

TEST(BinarySerDeTest, FlatRoundTrip) {
  BinarySerDe serde(FlatSchema());
  ExpectRoundTrip(serde, {Value::Int(42), Value::String("alice"),
                          Value::Double(3.5), Value::Bool(true)});
}

TEST(BinarySerDeTest, NestedRoundTrip) {
  BinarySerDe serde(NestedSchema());
  ExpectRoundTrip(serde, NestedRow());
}

TEST(BinarySerDeTest, UnionRoundTrip) {
  TypePtr schema =
      *TypeDescription::Parse("struct<u:uniontype<int,string>>");
  BinarySerDe serde(schema);
  ExpectRoundTrip(serde, {Value::MakeUnion(0, Value::Int(5))});
  ExpectRoundTrip(serde, {Value::MakeUnion(1, Value::String("str"))});
}

TEST(BinarySerDeTest, ProjectionSkipsBytes) {
  BinarySerDe serde(FlatSchema());
  Row row = {Value::Int(1), Value::String("carol"), Value::Double(0.5),
             Value::Bool(true)};
  std::string encoded;
  ASSERT_TRUE(serde.Serialize(row, &encoded).ok());
  Row decoded;
  ASSERT_TRUE(serde.Deserialize(encoded, {3}, &decoded).ok());
  EXPECT_TRUE(decoded[0].is_null());
  EXPECT_TRUE(decoded[1].is_null());
  EXPECT_TRUE(decoded[2].is_null());
  EXPECT_EQ(decoded[3].AsBool(), true);
}

TEST(BinarySerDeTest, TruncatedInputFails) {
  BinarySerDe serde(FlatSchema());
  Row row = {Value::Int(1), Value::String("d"), Value::Double(1.0),
             Value::Bool(true)};
  std::string encoded;
  ASSERT_TRUE(serde.Serialize(row, &encoded).ok());
  Row decoded;
  EXPECT_FALSE(
      serde.Deserialize(std::string_view(encoded).substr(0, 3), {}, &decoded)
          .ok());
}

TEST(SerDePropertyTest, RandomRowsRoundTripBothSerDes) {
  TypePtr schema = FlatSchema();
  TextSerDe text(schema);
  BinarySerDe binary(schema);
  Random rng(2024);
  for (int i = 0; i < 500; ++i) {
    Row row = {
        rng.Bernoulli(0.1) ? Value::Null()
                           : Value::Int(rng.Range(-1000000, 1000000)),
        rng.Bernoulli(0.1) ? Value::Null()
                           : Value::String(rng.NextString(rng.Uniform(30))),
        rng.Bernoulli(0.1) ? Value::Null()
                           : Value::Double(rng.Range(-1000, 1000) * 0.25),
        rng.Bernoulli(0.1) ? Value::Null() : Value::Bool(rng.Bernoulli(0.5)),
    };
    ExpectRoundTrip(text, row);
    ExpectRoundTrip(binary, row);
  }
}

}  // namespace
}  // namespace minihive::serde
