// Unit tests for the Demux/Mux operator-coordination protocol of the
// Correlation Optimizer (paper §5.2.2): tag restoration, multi-destination
// routing (input correlation), and group-signal counting that makes a
// downstream operator see each signal exactly once, after every parent
// delivered it.

#include <gtest/gtest.h>

#include "exec/operators.h"

namespace minihive::exec {
namespace {

/// Records every event that reaches it, in order.
class EventSink : public Operator {
 public:
  EventSink() : Operator(&desc_) { desc_.kind = OpKind::kSelect; }
  Status DoProcess(const Row& row, int tag) override {
    events.push_back("row(tag=" + std::to_string(tag) +
                     ",v=" + row[0].ToString() + ")");
    return Status::OK();
  }
  Status StartGroup() override {
    events.push_back("start");
    return Status::OK();
  }
  Status EndGroup() override {
    events.push_back("end");
    return Status::OK();
  }
  Status Finish() override {
    events.push_back("finish");
    return Status::OK();
  }
  std::vector<std::string> events;

 private:
  OpDesc desc_;
};

TEST(DemuxOperatorTest, RestoresTagsAndFansOut) {
  // Routes (paper Figure 5): new tag 0 -> child0 with old tag 2;
  // new tag 1 -> BOTH children (input correlation fan-out).
  OpDescPtr demux = MakeOp(OpKind::kDemux);
  demux->demux_routes = {{{2, 0}}, {{0, 0}, {7, 1}}};
  OperatorArena arena;
  Operator* op = *BuildOperatorTree(demux.get(), &arena);
  EventSink sink0, sink1;
  op->AddChild(&sink0);
  op->AddChild(&sink1);
  TaskContext ctx;
  ASSERT_TRUE(op->Init(&ctx).ok());

  ASSERT_TRUE(op->StartGroup().ok());
  ASSERT_TRUE(op->Process({Value::Int(10)}, 0).ok());
  ASSERT_TRUE(op->Process({Value::Int(20)}, 1).ok());
  ASSERT_TRUE(op->EndGroup().ok());

  EXPECT_EQ(sink0.events,
            (std::vector<std::string>{"start", "row(tag=2,v=10)",
                                      "row(tag=0,v=20)", "end"}));
  EXPECT_EQ(sink1.events,
            (std::vector<std::string>{"start", "row(tag=7,v=20)", "end"}));
  EXPECT_FALSE(op->Process({Value::Int(1)}, 5).ok()) << "unknown new tag";
}

class MuxFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    parent_a_ = MakeOp(OpKind::kSelect);
    parent_a_->projections = {Expr::Column(0, TypeKind::kBigInt)};
    parent_b_ = MakeOp(OpKind::kSelect);
    parent_b_->projections = {Expr::Column(0, TypeKind::kBigInt)};
    mux_ = MakeOp(OpKind::kMux);
    mux_->mux_parent_tags = {4, 9};
    OpDesc::Connect(parent_a_, mux_);
    OpDesc::Connect(parent_b_, mux_);

    // Build from a synthetic shared root so one build covers both parents
    // (mirrors a Demux feeding several pipelines).
    root_ = MakeOp(OpKind::kDemux);
    root_->demux_routes = {{{0, 0}}, {{0, 1}}};
    OpDesc::Connect(root_, parent_a_);
    OpDesc::Connect(root_, parent_b_);

    std::unordered_map<const OpDesc*, Operator*> built;
    auto result = BuildOperatorTree(root_.get(), &arena_, &built);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    a_ = built[parent_a_.get()];
    b_ = built[parent_b_.get()];
    Operator* mux_core = built[mux_.get()];
    ASSERT_NE(mux_core, nullptr);
    mux_core->AddChild(&sink_);
    ASSERT_TRUE((*result)->Init(&ctx_).ok());
  }

  OpDescPtr parent_a_, parent_b_, mux_, root_;
  OperatorArena arena_;
  TaskContext ctx_;
  EventSink sink_;
  Operator* a_ = nullptr;
  Operator* b_ = nullptr;
};

TEST_F(MuxFixture, SignalsForwardedOnceAfterAllParents) {
  // Parent A starts; the child must not see the group yet.
  ASSERT_TRUE(a_->StartGroup().ok());
  EXPECT_TRUE(sink_.events.empty());
  ASSERT_TRUE(b_->StartGroup().ok());
  ASSERT_EQ(sink_.events, (std::vector<std::string>{"start"}));

  // Rows flow immediately, tagged by parent slot.
  ASSERT_TRUE(a_->Process({Value::Int(1)}, 0).ok());
  ASSERT_TRUE(b_->Process({Value::Int(2)}, 0).ok());

  // End from one parent is held; from both, forwarded once.
  ASSERT_TRUE(a_->EndGroup().ok());
  EXPECT_EQ(sink_.events.back(), "row(tag=9,v=2)");
  ASSERT_TRUE(b_->EndGroup().ok());
  EXPECT_EQ(sink_.events,
            (std::vector<std::string>{"start", "row(tag=4,v=1)",
                                      "row(tag=9,v=2)", "end"}));

  // A second group works identically (counters reset).
  ASSERT_TRUE(a_->StartGroup().ok());
  ASSERT_TRUE(b_->StartGroup().ok());
  ASSERT_TRUE(b_->EndGroup().ok());
  ASSERT_TRUE(a_->EndGroup().ok());
  EXPECT_EQ(sink_.events.size(), 6u);  // +start +end.
  EXPECT_EQ(sink_.events.back(), "end");
}

TEST_F(MuxFixture, FinishForwardedOnce) {
  ASSERT_TRUE(a_->Finish().ok());
  EXPECT_TRUE(sink_.events.empty());
  ASSERT_TRUE(b_->Finish().ok());
  EXPECT_EQ(sink_.events, (std::vector<std::string>{"finish"}));
}

}  // namespace
}  // namespace minihive::exec
