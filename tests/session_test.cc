#include "common/session.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"

namespace minihive {
namespace {

SessionManagerOptions SmallOptions() {
  SessionManagerOptions options;
  options.num_workers = 2;
  // 256 bytes of caches + room for exactly two 256-byte query slices.
  options.global_memory_budget_bytes = 768;
  options.per_query_memory_budget_bytes = 256;
  options.block_cache_bytes = 128;
  options.metadata_cache_bytes = 128;
  options.max_queued_queries = 4;
  options.admission_queue_timeout_millis = 200;
  return options;
}

TEST(MemoryBudgetTest, ChildCommitsItsSliceAgainstTheParent) {
  MemoryBudget root("root", 1000);
  auto child = MemoryBudget::CreateChild(&root, "child", 600);
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(root.used(), 600u);
  // The remaining room cannot fit another 600-byte slice.
  auto second = MemoryBudget::CreateChild(&root, "second", 600);
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted());
  child = Status::Internal("drop");  // destroys the child
  EXPECT_EQ(root.used(), 0u);
  EXPECT_EQ(root.peak_used(), 600u);
}

TEST(MemoryBudgetTest, ReservationsWithinAChildAreIndependentOfTheParent) {
  MemoryBudget root("root", 1000);
  auto child = MemoryBudget::CreateChild(&root, "child", 400);
  ASSERT_TRUE(child.ok());
  MemoryBudget* c = child->get();
  EXPECT_TRUE(c->TryReserve(300).ok());
  EXPECT_EQ(c->used(), 300u);
  // The child's internal usage never changes the parent's accounting: the
  // whole slice was committed up front.
  EXPECT_EQ(root.used(), 400u);
  Status s = c->TryReserve(200);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_EQ(c->used(), 300u);  // all-or-nothing
  c->Release(300);
  EXPECT_EQ(c->used(), 0u);
}

TEST(MemoryBudgetTest, BudgetReservationReleasesOnDestruction) {
  MemoryBudget root("root", 1 << 20);
  {
    BudgetReservation r;
    ASSERT_TRUE(r.CoverAtLeast(&root, 1000, /*chunk_bytes=*/4096).ok());
    EXPECT_GE(r.bytes(), 1000u);
    EXPECT_EQ(root.used(), r.bytes());
    // Growth within the chunk is free; crossing it reserves another chunk.
    ASSERT_TRUE(r.CoverAtLeast(&root, 2000, /*chunk_bytes=*/4096).ok());
    EXPECT_EQ(r.bytes(), 4096u);
  }
  EXPECT_EQ(root.used(), 0u);
}

TEST(SessionManagerTest, AdmitsWithinTheGlobalBudget) {
  SessionManager manager(SmallOptions());
  auto a = manager.Admit("q1");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ((*a)->admitted_bytes(), 256u);
  EXPECT_EQ((*a)->queue_wait_millis(), 0);
  // The query's slice and the cache commitment both show under the root.
  EXPECT_EQ(manager.root_budget()->used(), 256u + 256u);
}

TEST(SessionManagerTest, RejectsRequestsAboveThePerQueryCap) {
  SessionManager manager(SmallOptions());
  auto a = manager.Admit("greedy", nullptr, /*requested_bytes=*/512);
  ASSERT_FALSE(a.ok());
  EXPECT_TRUE(a.status().IsResourceExhausted()) << a.status().ToString();
}

TEST(SessionManagerTest, QueuedQueryAdmitsOnceBudgetFrees) {
  SessionManagerOptions options = SmallOptions();
  options.admission_queue_timeout_millis = 5000;
  SessionManager manager(options);
  auto a = manager.Admit("a");
  auto b = manager.Admit("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::atomic<bool> c_admitted{false};
  std::thread waiter([&] {
    auto c = manager.Admit("c");
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    EXPECT_GT((*c)->queue_wait_millis(), 0);
    c_admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(c_admitted.load());
  a = Status::Internal("drop");  // finish query a, freeing its slice
  waiter.join();
  EXPECT_TRUE(c_admitted.load());
}

TEST(SessionManagerTest, QueueTimeoutIsTypedResourceExhausted) {
  SessionManagerOptions options = SmallOptions();
  options.admission_queue_timeout_millis = 50;
  SessionManager manager(options);
  auto a = manager.Admit("a");
  auto b = manager.Admit("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = manager.Admit("c");  // no room, times out in the queue
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsResourceExhausted()) << c.status().ToString();
}

TEST(SessionManagerTest, QueueOverflowRejectsImmediately) {
  SessionManagerOptions options = SmallOptions();
  options.max_queued_queries = 0;  // queueing disabled
  SessionManager manager(options);
  auto a = manager.Admit("a");
  auto b = manager.Admit("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = manager.Admit("c");
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsResourceExhausted()) << c.status().ToString();
}

TEST(SessionManagerTest, CancelledQueryStopsWaitingWithItsOwnStatus) {
  SessionManagerOptions options = SmallOptions();
  options.admission_queue_timeout_millis = 5000;
  SessionManager manager(options);
  auto a = manager.Admit("a");
  auto b = manager.Admit("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  QueryContext ctx;
  auto token = std::make_shared<CancellationToken>();
  ctx.set_token(token);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token->Cancel();
  });
  auto c = manager.Admit("c", &ctx);
  canceller.join();
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsCancelled()) << c.status().ToString();
}

TEST(SessionManagerTest, ConcurrentAdmissionNeverOvercommits) {
  SessionManagerOptions options = SmallOptions();
  options.admission_queue_timeout_millis = 2000;
  options.max_queued_queries = 64;
  SessionManager manager(options);
  constexpr int kThreads = 16;
  std::atomic<int> admitted{0};
  std::atomic<uint64_t> max_used{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        auto a = manager.Admit("t" + std::to_string(t));
        if (!a.ok()) {
          ASSERT_TRUE(a.status().IsResourceExhausted())
              << a.status().ToString();
          continue;
        }
        admitted.fetch_add(1);
        uint64_t used = manager.root_budget()->used();
        uint64_t prev = max_used.load();
        while (used > prev && !max_used.compare_exchange_weak(prev, used)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(admitted.load(), 0);
  // The commitment invariant: at no observed instant did the root exceed
  // its limit, and everything was released at the end.
  EXPECT_LE(max_used.load(), manager.root_budget()->limit());
  EXPECT_EQ(manager.root_budget()->used(), 256u);  // caches only
}

TEST(SessionManagerTest, SessionHandsOutFreshQueryContexts) {
  SessionManager manager(SmallOptions());
  std::unique_ptr<Session> session = manager.NewSession("cli", kPriorityHigh);
  EXPECT_EQ(session->name(), "cli");
  EXPECT_EQ(session->priority(), kPriorityHigh);
  auto ctx1 = session->NewQueryContext();
  auto ctx2 = session->NewQueryContext();
  ASSERT_NE(ctx1->token(), nullptr);
  EXPECT_NE(ctx1->token(), ctx2->token());
  ctx1->token()->Cancel();
  EXPECT_TRUE(ctx1->CheckAlive().IsCancelled());
  EXPECT_TRUE(ctx2->CheckAlive().ok());
}

}  // namespace
}  // namespace minihive
