#include "ql/driver.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "datagen/loader.h"

namespace minihive::ql {
namespace {

/// Shared fixture: a small star-ish schema with deterministic contents.
class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dfs::FileSystemOptions fs_options;
    fs_options.block_size = 256 * 1024;
    fs_ = std::make_unique<dfs::FileSystem>(fs_options);
    catalog_ = std::make_unique<Catalog>(fs_.get());

    // orders(o_id, o_custkey, o_amount, o_status)
    std::vector<Row> orders;
    Random rng(42);
    for (int i = 0; i < 2000; ++i) {
      orders.push_back({Value::Int(i), Value::Int(i % 100),
                        Value::Double((i % 50) * 1.5),
                        Value::String(i % 3 == 0 ? "open" : "done")});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "orders",
                    *TypeDescription::Parse("struct<o_id:bigint,"
                                            "o_custkey:bigint,o_amount:double,"
                                            "o_status:string>"),
                    formats::FormatKind::kTextFile,
                    codec::CompressionKind::kNone, orders, 3)
                    .ok());

    // customers(c_id, c_name, c_segment)
    std::vector<Row> customers;
    for (int i = 0; i < 100; ++i) {
      customers.push_back({Value::Int(i),
                           Value::String("cust-" + std::to_string(i)),
                           Value::String(i % 4 == 0 ? "gold" : "basic")});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "customers",
                    *TypeDescription::Parse("struct<c_id:bigint,"
                                            "c_name:string,c_segment:string>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, customers)
                    .ok());
  }

  QueryResult MustExecute(const std::string& sql,
                          DriverOptions options = DriverOptions()) {
    options.num_workers = 2;
    Driver driver(fs_.get(), catalog_.get(), options);
    auto result = driver.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    if (!result.ok()) return QueryResult();
    return std::move(result).ValueOrDie();
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(DriverTest, SimpleProjectionAndFilter) {
  QueryResult result = MustExecute(
      "SELECT o_id, o_amount FROM orders WHERE o_id < 5");
  ASSERT_EQ(result.rows.size(), 5u);
  std::vector<int64_t> ids;
  for (const Row& row : result.rows) ids.push_back(row[0].AsInt());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(result.column_names[1], "o_amount");
}

TEST_F(DriverTest, ArithmeticAndStringPredicates) {
  QueryResult result = MustExecute(
      "SELECT o_id, o_amount * 2 AS double_amount FROM orders "
      "WHERE o_status = 'open' AND o_id BETWEEN 0 AND 8");
  ASSERT_EQ(result.rows.size(), 3u);  // ids 0, 3, 6.
  for (const Row& row : result.rows) {
    EXPECT_EQ(row[0].AsInt() % 3, 0);
    EXPECT_DOUBLE_EQ(row[1].AsDouble(),
                     (row[0].AsInt() % 50) * 1.5 * 2);
  }
}

TEST_F(DriverTest, GlobalAggregation) {
  QueryResult result = MustExecute(
      "SELECT COUNT(*), SUM(o_amount), MIN(o_id), MAX(o_id), AVG(o_amount) "
      "FROM orders");
  ASSERT_EQ(result.rows.size(), 1u);
  const Row& row = result.rows[0];
  EXPECT_EQ(row[0].AsInt(), 2000);
  double expected_sum = 0;
  for (int i = 0; i < 2000; ++i) expected_sum += (i % 50) * 1.5;
  EXPECT_NEAR(row[1].AsDouble(), expected_sum, 1e-6);
  EXPECT_EQ(row[2].AsInt(), 0);
  EXPECT_EQ(row[3].AsInt(), 1999);
  EXPECT_NEAR(row[4].AsDouble(), expected_sum / 2000, 1e-9);
}

TEST_F(DriverTest, GroupByWithHaving) {
  QueryResult result = MustExecute(
      "SELECT o_custkey, COUNT(*) AS cnt, SUM(o_amount) AS total "
      "FROM orders GROUP BY o_custkey");
  ASSERT_EQ(result.rows.size(), 100u);
  for (const Row& row : result.rows) {
    EXPECT_EQ(row[1].AsInt(), 20);  // 2000 rows over 100 customers.
  }
}

TEST_F(DriverTest, CombinerCutsShuffleWithIdenticalResults) {
  // A tiny hash-flush cap forces the map-side hash GroupBy to emit many
  // duplicate partials per key; the shuffle combiner must fold them back so
  // shuffled_bytes strictly drops, with byte-identical query results.
  const char* sql =
      "SELECT o_custkey, COUNT(*) AS cnt, SUM(o_amount) AS total, "
      "       MIN(o_id) AS lo, MAX(o_id) AS hi "
      "FROM orders GROUP BY o_custkey";
  auto run = [&](bool combiner) {
    DriverOptions options;
    options.shuffle_combiner = combiner;
    options.map_aggr_flush_entries = 4;
    return MustExecute(sql, options);
  };
  QueryResult without = run(false);
  QueryResult with = run(true);

  ASSERT_EQ(without.rows.size(), 100u);
  ASSERT_EQ(with.rows.size(), without.rows.size());
  auto sorted_rows = [](const QueryResult& result) {
    std::vector<Row> rows = result.rows;
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return a[0].AsInt() < b[0].AsInt();
    });
    return rows;
  };
  std::vector<Row> lhs = sorted_rows(without);
  std::vector<Row> rhs = sorted_rows(with);
  for (size_t i = 0; i < lhs.size(); ++i) {
    for (size_t c = 0; c < lhs[i].size(); ++c) {
      EXPECT_EQ(lhs[i][c].Compare(rhs[i][c]), 0)
          << "row " << i << " col " << c;
    }
  }

  EXPECT_LT(with.counters.shuffled_bytes.load(),
            without.counters.shuffled_bytes.load());
  EXPECT_GT(with.counters.combine_input_records.load(),
            with.counters.combine_output_records.load());
  EXPECT_EQ(without.counters.combine_input_records.load(), 0u);
  EXPECT_NE(with.plan_text.find("--- combine ---"), std::string::npos);
}

TEST_F(DriverTest, AvgGroupByRunsWithoutCombiner) {
  // AVG is not decomposable: the plan must not get a combiner, and still
  // compute correct results under bounded-memory hash flushing.
  DriverOptions options;
  options.map_aggr_flush_entries = 4;
  QueryResult result = MustExecute(
      "SELECT o_custkey, AVG(o_amount) AS avg_amount, COUNT(*) AS cnt "
      "FROM orders GROUP BY o_custkey",
      options);
  ASSERT_EQ(result.rows.size(), 100u);
  EXPECT_EQ(result.plan_text.find("--- combine ---"), std::string::npos);
  EXPECT_EQ(result.counters.combine_input_records.load(), 0u);
  for (const Row& row : result.rows) {
    int64_t custkey = row[0].AsInt();
    // Customer k owns orders k, k+100, ...: amounts ((k + 100j) % 50) * 1.5.
    double expected = 0;
    for (int j = 0; j < 20; ++j) expected += ((custkey + 100 * j) % 50) * 1.5;
    EXPECT_NEAR(row[1].AsDouble(), expected / 20, 1e-9) << custkey;
    EXPECT_EQ(row[2].AsInt(), 20);
  }
}

TEST_F(DriverTest, OrderByAndLimit) {
  QueryResult result = MustExecute(
      "SELECT o_id, o_amount FROM orders WHERE o_id < 100 "
      "ORDER BY o_id DESC LIMIT 10");
  ASSERT_EQ(result.rows.size(), 10u);
  for (size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_EQ(result.rows[i][0].AsInt(), 99 - static_cast<int64_t>(i));
  }
}

TEST_F(DriverTest, ReduceJoin) {
  DriverOptions options;
  options.mapjoin_conversion = false;  // Force the common (reduce) join.
  QueryResult result = MustExecute(
      "SELECT o_id, c_name FROM orders JOIN customers ON "
      "orders.o_custkey = customers.c_id WHERE o_id < 10",
      options);
  ASSERT_EQ(result.rows.size(), 10u);
  for (const Row& row : result.rows) {
    EXPECT_EQ(row[1].AsString(),
              "cust-" + std::to_string(row[0].AsInt() % 100));
  }
}

TEST_F(DriverTest, MapJoinMatchesReduceJoin) {
  const std::string sql =
      "SELECT o_custkey, c_segment, COUNT(*) AS cnt FROM orders "
      "JOIN customers ON orders.o_custkey = customers.c_id "
      "GROUP BY o_custkey, c_segment";
  DriverOptions reduce_options;
  reduce_options.mapjoin_conversion = false;
  QueryResult reduce_result = MustExecute(sql, reduce_options);

  DriverOptions map_options;
  map_options.mapjoin_conversion = true;
  map_options.merge_maponly_jobs = true;
  QueryResult map_result = MustExecute(sql, map_options);

  auto canonical = [](const QueryResult& result) {
    std::vector<std::string> rows;
    for (const Row& row : result.rows) {
      std::string s;
      for (const Value& v : row) s += v.ToString() + "|";
      rows.push_back(s);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(canonical(reduce_result), canonical(map_result));
  EXPECT_EQ(reduce_result.rows.size(), 100u);
  EXPECT_LT(map_result.num_jobs, reduce_result.num_jobs)
      << "map-join + merge should eliminate the join shuffle";
}

TEST_F(DriverTest, MergeMapOnlyJobsReducesJobCount) {
  const std::string sql =
      "SELECT o_id, c_name FROM orders JOIN customers ON "
      "orders.o_custkey = customers.c_id WHERE o_id < 50";
  DriverOptions unmerged;
  unmerged.mapjoin_conversion = true;
  unmerged.merge_maponly_jobs = false;
  QueryResult with_extra = MustExecute(sql, unmerged);

  DriverOptions merged;
  merged.mapjoin_conversion = true;
  merged.merge_maponly_jobs = true;
  QueryResult without_extra = MustExecute(sql, merged);

  EXPECT_EQ(with_extra.rows.size(), 50u);
  EXPECT_EQ(without_extra.rows.size(), 50u);
  EXPECT_GT(with_extra.num_map_only_jobs, without_extra.num_map_only_jobs);
  EXPECT_LT(without_extra.num_jobs, with_extra.num_jobs);
}

TEST_F(DriverTest, JoinThenGroupBy) {
  DriverOptions options;
  options.mapjoin_conversion = false;
  QueryResult result = MustExecute(
      "SELECT c_segment, SUM(o_amount) AS total FROM orders "
      "JOIN customers ON orders.o_custkey = customers.c_id "
      "GROUP BY c_segment",
      options);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_GE(result.num_jobs, 2);  // Join job + aggregation job.
}

TEST_F(DriverTest, SubqueryInFrom) {
  QueryResult result = MustExecute(
      "SELECT big.o_custkey, big.total FROM "
      "(SELECT o_custkey, SUM(o_amount) AS total FROM orders "
      " GROUP BY o_custkey) big WHERE big.total > 700");
  for (const Row& row : result.rows) {
    EXPECT_GT(row[1].AsDouble(), 700.0);
  }
  EXPECT_FALSE(result.rows.empty());
}

TEST_F(DriverTest, LeftOuterJoinPadsNulls) {
  // Orders with custkey >= 100 do not exist; make some.
  DriverOptions options;
  options.mapjoin_conversion = false;
  QueryResult result = MustExecute(
      "SELECT c_id, o_id FROM customers LEFT JOIN orders ON "
      "customers.c_id = orders.o_custkey AND orders.o_id < 0",
      options);
  // No order has o_id < 0, so every customer pads with NULL.
  ASSERT_EQ(result.rows.size(), 100u);
  for (const Row& row : result.rows) {
    EXPECT_TRUE(row[1].is_null());
  }
}

TEST_F(DriverTest, ParseErrorsSurface) {
  Driver driver(fs_.get(), catalog_.get(), DriverOptions());
  EXPECT_FALSE(driver.Execute("SELECT FROM x").ok());
  EXPECT_FALSE(driver.Execute("SELECT a FROM missing_table").ok());
  EXPECT_FALSE(driver.Execute("SELECT bogus_col FROM orders").ok());
}

TEST_F(DriverTest, ExplainDoesNotExecute) {
  Driver driver(fs_.get(), catalog_.get(), DriverOptions());
  auto result = driver.Explain("SELECT o_id FROM orders WHERE o_id < 5");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
  EXPECT_FALSE(result->plan_text.empty());
  EXPECT_GE(result->num_jobs, 1);
}

}  // namespace
}  // namespace minihive::ql
