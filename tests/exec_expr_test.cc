#include "exec/expr.h"

#include <gtest/gtest.h>

namespace minihive::exec {
namespace {

Row TestRow() {
  return {Value::Int(10), Value::Double(2.5), Value::String("abc"),
          Value::Null(), Value::Bool(true)};
}

TEST(ExprEvalTest, ColumnAndLiteral) {
  Row row = TestRow();
  EXPECT_EQ(Expr::Column(0, TypeKind::kBigInt)->Eval(row).AsInt(), 10);
  EXPECT_EQ(Expr::Literal(Value::String("x"), TypeKind::kString)
                ->Eval(row)
                .AsString(),
            "x");
}

TEST(ExprEvalTest, ArithmeticTypePromotion) {
  Row row = TestRow();
  // int + int stays integral.
  ExprPtr int_add =
      Expr::Binary(ExprKind::kAdd, Expr::Column(0, TypeKind::kBigInt),
                   Expr::Literal(Value::Int(5), TypeKind::kBigInt));
  EXPECT_EQ(int_add->result_type(), TypeKind::kBigInt);
  EXPECT_TRUE(int_add->Eval(row).is_int());
  EXPECT_EQ(int_add->Eval(row).AsInt(), 15);
  // int * double promotes.
  ExprPtr mixed =
      Expr::Binary(ExprKind::kMul, Expr::Column(0, TypeKind::kBigInt),
                   Expr::Column(1, TypeKind::kDouble));
  EXPECT_EQ(mixed->result_type(), TypeKind::kDouble);
  EXPECT_DOUBLE_EQ(mixed->Eval(row).AsDouble(), 25.0);
  // Division is always double; division by zero yields NULL.
  ExprPtr div =
      Expr::Binary(ExprKind::kDiv, Expr::Column(0, TypeKind::kBigInt),
                   Expr::Literal(Value::Int(0), TypeKind::kBigInt));
  EXPECT_TRUE(div->Eval(row).is_null());
}

TEST(ExprEvalTest, NullPropagatesThroughArithmeticAndComparison) {
  Row row = TestRow();
  ExprPtr add =
      Expr::Binary(ExprKind::kAdd, Expr::Column(3, TypeKind::kBigInt),
                   Expr::Literal(Value::Int(1), TypeKind::kBigInt));
  EXPECT_TRUE(add->Eval(row).is_null());
  ExprPtr cmp =
      Expr::Binary(ExprKind::kEq, Expr::Column(3, TypeKind::kBigInt),
                   Expr::Column(3, TypeKind::kBigInt));
  EXPECT_TRUE(cmp->Eval(row).is_null()) << "NULL = NULL is NULL, not true";
}

TEST(ExprEvalTest, KleeneAndOr) {
  Row row = TestRow();
  auto lit_true = Expr::Literal(Value::Bool(true), TypeKind::kBoolean);
  auto lit_false = Expr::Literal(Value::Bool(false), TypeKind::kBoolean);
  auto lit_null = Expr::Literal(Value::Null(), TypeKind::kBoolean);
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  EXPECT_FALSE(
      Expr::Binary(ExprKind::kAnd, lit_false, lit_null)->Eval(row).AsBool());
  EXPECT_TRUE(
      Expr::Binary(ExprKind::kAnd, lit_true, lit_null)->Eval(row).is_null());
  // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
  EXPECT_TRUE(
      Expr::Binary(ExprKind::kOr, lit_true, lit_null)->Eval(row).AsBool());
  EXPECT_TRUE(
      Expr::Binary(ExprKind::kOr, lit_false, lit_null)->Eval(row).is_null());
  // NOT NULL = NULL.
  EXPECT_TRUE(Expr::Not(lit_null)->Eval(row).is_null());
}

TEST(ExprEvalTest, BetweenAndIn) {
  Row row = TestRow();
  ExprPtr between = Expr::Between(
      Expr::Column(0, TypeKind::kBigInt),
      Expr::Literal(Value::Int(5), TypeKind::kBigInt),
      Expr::Literal(Value::Int(10), TypeKind::kBigInt));
  EXPECT_TRUE(between->Eval(row).AsBool());  // Inclusive upper bound.

  ExprPtr in = Expr::In(
      Expr::Column(2, TypeKind::kString),
      {Expr::Literal(Value::String("xyz"), TypeKind::kString),
       Expr::Literal(Value::String("abc"), TypeKind::kString)});
  EXPECT_TRUE(in->Eval(row).AsBool());

  // v IN (non-matching, NULL) is NULL, not FALSE (SQL semantics).
  ExprPtr in_null = Expr::In(
      Expr::Column(2, TypeKind::kString),
      {Expr::Literal(Value::String("zzz"), TypeKind::kString),
       Expr::Literal(Value::Null(), TypeKind::kString)});
  EXPECT_TRUE(in_null->Eval(row).is_null());
}

TEST(ExprEvalTest, IsNullVariants) {
  Row row = TestRow();
  EXPECT_TRUE(Expr::IsNull(Expr::Column(3, TypeKind::kBigInt), false)
                  ->Eval(row)
                  .AsBool());
  EXPECT_FALSE(Expr::IsNull(Expr::Column(0, TypeKind::kBigInt), false)
                   ->Eval(row)
                   .AsBool());
  EXPECT_TRUE(Expr::IsNull(Expr::Column(0, TypeKind::kBigInt), true)
                  ->Eval(row)
                  .AsBool());
}

TEST(ExprTest, RemapColumnsRewritesTree) {
  ExprPtr e = Expr::Binary(
      ExprKind::kAdd, Expr::Column(2, TypeKind::kBigInt),
      Expr::Binary(ExprKind::kMul, Expr::Column(5, TypeKind::kBigInt),
                   Expr::Literal(Value::Int(3), TypeKind::kBigInt)));
  std::vector<int> mapping(6, -1);
  mapping[2] = 0;
  mapping[5] = 1;
  ExprPtr remapped = e->RemapColumns(mapping);
  Row row = {Value::Int(100), Value::Int(7)};
  EXPECT_EQ(remapped->Eval(row).AsInt(), 121);
  // The original tree is untouched.
  std::vector<int> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<int>{2, 5}));
}

TEST(ExprTest, CollectColumnsDeduplicates) {
  ExprPtr e = Expr::Binary(
      ExprKind::kAdd, Expr::Column(4, TypeKind::kBigInt),
      Expr::Binary(ExprKind::kAdd, Expr::Column(1, TypeKind::kBigInt),
                   Expr::Column(4, TypeKind::kBigInt)));
  std::vector<int> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<int>{1, 4}));
}

TEST(AggDescTest, PartialArityAndResultTypes) {
  AggDesc avg{AggKind::kAvg, Expr::Column(0, TypeKind::kBigInt)};
  EXPECT_EQ(avg.PartialArity(), 2);
  EXPECT_EQ(avg.ResultType(), TypeKind::kDouble);
  AggDesc count{AggKind::kCountStar, nullptr};
  EXPECT_EQ(count.PartialArity(), 1);
  EXPECT_EQ(count.ResultType(), TypeKind::kBigInt);
  AggDesc sum_double{AggKind::kSum, Expr::Column(0, TypeKind::kDouble)};
  EXPECT_EQ(sum_double.ResultType(), TypeKind::kDouble);
  AggDesc min_string{AggKind::kMin, Expr::Column(0, TypeKind::kString)};
  EXPECT_EQ(min_string.ResultType(), TypeKind::kString);
}

TEST(AggBufferTest, SumOfAllNullsIsNull) {
  AggDesc desc{AggKind::kSum, Expr::Column(0, TypeKind::kBigInt)};
  AggBuffer buffer(&desc);
  buffer.Update({Value::Null()});
  buffer.Update({Value::Null()});
  Row out;
  buffer.EmitFinal(&out);
  EXPECT_TRUE(out[0].is_null());
}

TEST(AggBufferTest, MinMaxStrings) {
  AggDesc min_desc{AggKind::kMin, Expr::Column(0, TypeKind::kString)};
  AggDesc max_desc{AggKind::kMax, Expr::Column(0, TypeKind::kString)};
  AggBuffer min_buffer(&min_desc);
  AggBuffer max_buffer(&max_desc);
  for (const char* s : {"pear", "apple", "zucchini", "mango"}) {
    min_buffer.Update({Value::String(s)});
    max_buffer.Update({Value::String(s)});
  }
  Row out;
  min_buffer.EmitFinal(&out);
  max_buffer.EmitFinal(&out);
  EXPECT_EQ(out[0].AsString(), "apple");
  EXPECT_EQ(out[1].AsString(), "zucchini");
}

TEST(AggBufferTest, PartialMergeEquivalence) {
  // Update-everything vs split-into-partials-and-merge must agree.
  AggDesc desc{AggKind::kAvg, Expr::Column(0, TypeKind::kBigInt)};
  AggBuffer whole(&desc);
  AggBuffer part1(&desc), part2(&desc), merged(&desc);
  for (int i = 1; i <= 10; ++i) {
    whole.Update({Value::Int(i)});
    (i <= 4 ? part1 : part2).Update({Value::Int(i)});
  }
  Row p1, p2;
  part1.EmitPartial(&p1);
  part2.EmitPartial(&p2);
  merged.Merge(p1, 0);
  merged.Merge(p2, 0);
  Row expect_row, got_row;
  whole.EmitFinal(&expect_row);
  merged.EmitFinal(&got_row);
  EXPECT_DOUBLE_EQ(expect_row[0].AsDouble(), got_row[0].AsDouble());
}

}  // namespace
}  // namespace minihive::exec
