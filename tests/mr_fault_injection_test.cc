/// Deterministic fault-injection sweep over the whole stack: DFS read
/// errors and silent byte flips under real queries (GROUP BY, join). The
/// contract under test is the paper's durability story end-to-end — every
/// run must either produce byte-identical results to the fault-free run
/// (task retries absorbed the faults) or fail with a typed error
/// (IoError / Corruption). A silently wrong answer is the only outcome
/// that fails this test.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/random.h"
#include "datagen/loader.h"
#include "mr/transport.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

/// Canonical form of a result set: one string per row, sorted, so runs
/// with different task interleavings compare equal.
std::vector<std::string> Canonicalize(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dfs::FileSystemOptions fs_options;
    fs_options.block_size = 64 * 1024;  // Several blocks => several splits.
    fs_ = std::make_unique<dfs::FileSystem>(fs_options);
    catalog_ = std::make_unique<Catalog>(fs_.get());

    std::vector<Row> orders;
    for (int i = 0; i < 4000; ++i) {
      orders.push_back({Value::Int(i), Value::Int(i % 128),
                        Value::Double((i % 97) * 2.25),
                        Value::String(i % 3 == 0 ? "open" : "done")});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "orders",
                    *TypeDescription::Parse("struct<o_id:bigint,"
                                            "o_custkey:bigint,o_amount:double,"
                                            "o_status:string>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, orders, 3)
                    .ok());

    std::vector<Row> customers;
    for (int i = 0; i < 128; ++i) {
      customers.push_back({Value::Int(i),
                           Value::String("cust-" + std::to_string(i)),
                           Value::String(i % 4 == 0 ? "gold" : "basic")});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "customers",
                    *TypeDescription::Parse("struct<c_id:bigint,"
                                            "c_name:string,c_segment:string>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, customers)
                    .ok());
  }

  void TearDown() override { fs_->set_fault_injector(nullptr); }

  Result<QueryResult> Execute(const std::string& sql) {
    DriverOptions options;
    options.num_workers = 2;
    Driver driver(fs_.get(), catalog_.get(), options);
    return driver.Execute(sql);
  }

  /// Runs `sql` once fault-free (the golden answer), then once per seed
  /// under injection, and enforces identical-or-typed-error per run.
  void Sweep(const std::string& sql, int num_seeds, FaultConfig base) {
    auto golden = Execute(sql);
    ASSERT_TRUE(golden.ok()) << golden.status().ToString();
    std::vector<std::string> want = Canonicalize(golden->rows);
    ASSERT_FALSE(want.empty());

    int successes = 0;
    int typed_failures = 0;
    uint64_t injected = 0;
    uint64_t recovered_failures = 0;
    for (int seed = 0; seed < num_seeds; ++seed) {
      FaultConfig config = base;
      config.seed = static_cast<uint64_t>(seed) * 7919 + 1;
      FaultInjector injector(config);
      fs_->set_fault_injector(&injector);
      auto result = Execute(sql);
      fs_->set_fault_injector(nullptr);
      injected += injector.stats().total();

      if (!result.ok()) {
        // Acceptable only as a *typed* infrastructure error.
        EXPECT_TRUE(result.status().IsIoError() ||
                    result.status().IsCorruption())
            << "seed " << seed << ": untyped failure "
            << result.status().ToString();
        ++typed_failures;
        continue;
      }
      ++successes;
      recovered_failures += result->counters.map_task_failures.load() +
                            result->counters.reduce_task_failures.load();
      EXPECT_EQ(Canonicalize(result->rows), want)
          << "seed " << seed << ": run succeeded with WRONG rows";
    }

    // The sweep is only meaningful if faults actually fired and retries
    // actually recovered some of them.
    EXPECT_GT(injected, 0u) << "injector never fired; sweep is vacuous";
    EXPECT_GT(successes, 0) << "every seed failed; retries are not working";
    EXPECT_GT(recovered_failures, 0u)
        << "no run recovered from a failed attempt; probabilities too low "
           "to exercise the retry path";
    SCOPED_TRACE("sweep: " + std::to_string(successes) + " ok, " +
                 std::to_string(typed_failures) + " typed failures, " +
                 std::to_string(injected) + " faults injected");
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(FaultSweepTest, GroupByUnderReadErrorsAndByteFlips) {
  FaultConfig config;
  config.read_error_probability = 0.01;
  config.read_flip_probability = 0.005;
  Sweep(
      "SELECT o_custkey, COUNT(*) AS cnt, SUM(o_amount) AS total "
      "FROM orders GROUP BY o_custkey",
      25, config);
}

TEST_F(FaultSweepTest, JoinGroupByUnderReadErrorsAndByteFlips) {
  FaultConfig config;
  config.read_error_probability = 0.01;
  config.read_flip_probability = 0.005;
  Sweep(
      "SELECT c_segment, COUNT(*) AS cnt, SUM(o_amount) AS total "
      "FROM orders JOIN customers ON o_custkey = c_id "
      "GROUP BY c_segment",
      25, config);
}

TEST_F(FaultSweepTest, HighFaultRateNeverProducesWrongRows) {
  // Well past the retry budget's recovery point: most runs will die, which
  // is fine — the assertion that matters is identical-or-typed-error.
  const std::string sql =
      "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status";
  auto golden = Execute(sql);
  ASSERT_TRUE(golden.ok());
  std::vector<std::string> want = Canonicalize(golden->rows);

  for (int seed = 0; seed < 10; ++seed) {
    FaultConfig config;
    config.seed = 1000 + seed;
    config.read_error_probability = 0.25;
    config.read_flip_probability = 0.10;
    FaultInjector injector(config);
    fs_->set_fault_injector(&injector);
    auto result = Execute(sql);
    fs_->set_fault_injector(nullptr);
    if (result.ok()) {
      EXPECT_EQ(Canonicalize(result->rows), want) << "seed " << seed;
    } else {
      EXPECT_TRUE(result.status().IsIoError() ||
                  result.status().IsCorruption())
          << "seed " << seed << ": " << result.status().ToString();
    }
  }
}

TEST_F(FaultSweepTest, DelayedReadsTimeOutAndRetryToSuccess) {
  // Straggler injection: a stalled read makes its task attempt blow the
  // per-attempt deadline; the engine must kill it (DeadlineExceeded), count
  // it in tasks_timed_out, and retry it to success. The sweep contract is
  // the usual one — identical rows or a typed error — plus evidence that
  // the timeout→retry→success path actually ran.
  const std::string sql =
      "SELECT o_custkey, COUNT(*) AS cnt, SUM(o_amount) AS total "
      "FROM orders GROUP BY o_custkey";
  auto golden = Execute(sql);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  std::vector<std::string> want = Canonicalize(golden->rows);

  auto run_with_timeout = [&](uint64_t seed) {
    FaultConfig config;
    config.seed = seed;
    // Rare but decisive: one stalled read (1 s) pushes an attempt far past
    // the 400 ms deadline; the retry redraws fresh delay decisions, so
    // back-to-back stalls of the same task are unlikely. The deadline is
    // generous enough that an undelayed attempt never trips it, even under
    // sanitizer slowdown.
    config.read_delay_probability = 0.04;
    config.delay_millis = 1000;
    config.path_filter = "/warehouse/orders";
    FaultInjector injector(config);
    fs_->set_fault_injector(&injector);
    DriverOptions options;
    options.num_workers = 2;
    options.task_timeout_millis = 400;
    Driver driver(fs_.get(), catalog_.get(), options);
    auto result = driver.Execute(sql);
    fs_->set_fault_injector(nullptr);
    return std::make_pair(std::move(result),
                          injector.stats().read_delays.load());
  };

  int successes = 0;
  uint64_t delays_injected = 0;
  uint64_t recovered_timeouts = 0;
  for (int seed = 0; seed < 12; ++seed) {
    auto [result, delays] = run_with_timeout(9000 + seed);
    delays_injected += delays;
    if (!result.ok()) {
      // A task whose every attempt stalled dies with the timeout's typed
      // error after max_task_attempts — acceptable, like any typed failure.
      EXPECT_TRUE(result.status().IsDeadlineExceeded() ||
                  result.status().IsIoError())
          << "seed " << seed << ": " << result.status().ToString();
      continue;
    }
    ++successes;
    recovered_timeouts += result->counters.tasks_timed_out.load();
    EXPECT_EQ(Canonicalize(result->rows), want)
        << "seed " << seed << ": run succeeded with WRONG rows";
    // Straggler kills are failures the job recovered from, so they must
    // also show up in the generic failure counters.
    EXPECT_GE(result->counters.map_task_failures.load() +
                  result->counters.reduce_task_failures.load(),
              result->counters.tasks_timed_out.load());
  }
  EXPECT_GT(delays_injected, 0u) << "no delay ever fired; sweep is vacuous";
  EXPECT_GT(successes, 0) << "every seed failed; timeout retries not working";
  EXPECT_GT(recovered_timeouts, 0u)
      << "no successful run recovered from a timed-out attempt";
}

TEST_F(FaultSweepTest, DispatchedWorkerLossSweep) {
  // The distributed dispatch layer under combined transport faults: worker
  // crashes (before and after output commit), request drops and duplicates,
  // response drops, heartbeat loss (killing workers mid-query) and
  // straggler delivery delays — all at once, swept over seeds. The contract
  // is the same end-to-end durability story as the DFS sweeps: every run
  // produces byte-identical rows or a typed infrastructure error, never a
  // silently wrong answer, never a hang, and never a leaked temp file.
  const std::string sql =
      "SELECT c_segment, COUNT(*) AS cnt, SUM(o_amount) AS total "
      "FROM orders JOIN customers ON o_custkey = c_id "
      "GROUP BY c_segment";
  auto golden = Execute(sql);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  std::vector<std::string> want = Canonicalize(golden->rows);
  ASSERT_FALSE(want.empty());

  int successes = 0;
  int typed_failures = 0;
  uint64_t transport_faults = 0;
  uint64_t crashes = 0;
  uint64_t dispatches = 0;
  uint64_t retries_or_fallbacks = 0;
  for (int seed = 0; seed < 22; ++seed) {
    FaultConfig config;
    config.seed = static_cast<uint64_t>(seed) * 104729 + 13;
    config.send_drop_probability = 0.03;
    config.send_duplicate_probability = 0.03;
    config.response_drop_probability = 0.02;
    config.worker_crash_before_commit_probability = 0.01;
    config.worker_crash_after_commit_probability = 0.01;
    config.heartbeat_drop_probability = 0.20;
    config.send_delay_probability = 0.05;
    config.delay_millis = 120;
    FaultInjector injector(config);

    DriverOptions options;
    options.num_workers = 2;
    options.workers.num_workers = 3;
    options.workers.rpc_timeout_millis = 400;
    options.workers.heartbeat_millis = 15;
    options.workers.missed_heartbeats_dead = 2;
    options.workers.worker_blacklist_failures = 2;
    options.workers.retry_backoff.max_millis = 50;
    options.workers.seed = config.seed;
    Driver driver(fs_.get(), catalog_.get(), options);
    auto* transport =
        static_cast<mr::SimulatedRemoteTransport*>(driver.transport());
    transport->set_fault_injector(&injector);
    auto result = driver.Execute(sql);
    transport->set_fault_injector(nullptr);
    transport_faults += injector.stats().transport_total();
    for (int w = 0; w < 3; ++w) crashes += transport->WorkerCrashed(w);

    // A failed or crashed-out run must never leak attempt/temp files into
    // the shared /tmp namespace (the next query lists it).
    EXPECT_TRUE(fs_->List("/tmp/").empty())
        << "seed " << seed << " leaked temp files";

    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsIoError() ||
                  result.status().IsCorruption() ||
                  result.status().IsDeadlineExceeded())
          << "seed " << seed << ": untyped failure "
          << result.status().ToString();
      ++typed_failures;
      continue;
    }
    ++successes;
    dispatches += result->counters.transport_dispatches.load();
    retries_or_fallbacks += result->counters.transport_retries.load() +
                            result->counters.transport_fallbacks.load();
    EXPECT_EQ(Canonicalize(result->rows), want)
        << "seed " << seed << ": run succeeded with WRONG rows";
  }

  EXPECT_GT(transport_faults, 0u)
      << "no transport fault ever fired; sweep is vacuous";
  EXPECT_GT(crashes, 0u) << "no worker ever crashed; sweep is vacuous";
  EXPECT_GT(successes, 0) << "every seed failed; dispatch retries not working";
  EXPECT_GT(dispatches, 0u) << "tasks never routed through the transport";
  EXPECT_GT(retries_or_fallbacks, 0u)
      << "no run recovered via retry or fallback; probabilities too low";
  SCOPED_TRACE("dispatch sweep: " + std::to_string(successes) + " ok, " +
               std::to_string(typed_failures) + " typed failures, " +
               std::to_string(transport_faults) + " transport faults");
}

TEST_F(FaultSweepTest, WriteFaultsAreRetriedOrTyped) {
  // Append/close failures hit the shuffle spill and sink writers; a failed
  // write attempt must be retried from scratch, never half-committed.
  const std::string sql =
      "SELECT o_custkey, MIN(o_id), MAX(o_id) FROM orders "
      "GROUP BY o_custkey";
  auto golden = Execute(sql);
  ASSERT_TRUE(golden.ok());
  std::vector<std::string> want = Canonicalize(golden->rows);

  int successes = 0;
  for (int seed = 0; seed < 15; ++seed) {
    FaultConfig config;
    config.seed = 5000 + seed;
    config.append_error_probability = 0.002;
    config.close_error_probability = 0.01;
    FaultInjector injector(config);
    fs_->set_fault_injector(&injector);
    auto result = Execute(sql);
    fs_->set_fault_injector(nullptr);
    if (result.ok()) {
      ++successes;
      EXPECT_EQ(Canonicalize(result->rows), want) << "seed " << seed;
    } else {
      EXPECT_TRUE(result.status().IsIoError() ||
                  result.status().IsCorruption())
          << "seed " << seed << ": " << result.status().ToString();
    }
  }
  EXPECT_GT(successes, 0);
}

}  // namespace
}  // namespace minihive::ql
