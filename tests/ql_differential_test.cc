/// Differential harness: randomized grammar-generated queries executed by
/// the row engine and the vectorized engine over TPC-H-shaped data must
/// produce identical results. Any divergence prints the seed and the SQL,
/// so a failure reproduces with a one-line test filter.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

/// Query generator: a small SQL grammar over lineitem/orders. Everything is
/// driven by one Random stream, so a seed fully determines the query.
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    bool join = rng_.Bernoulli(0.3);
    bool aggregate = rng_.Bernoulli(0.7);
    std::string sql = "SELECT ";
    std::string group_col;
    if (aggregate) {
      if (rng_.Bernoulli(0.8)) {
        group_col = PickGroupColumn(join);
        sql += group_col + ", ";
      }
      int num_aggs = 1 + static_cast<int>(rng_.Uniform(3));
      for (int i = 0; i < num_aggs; ++i) {
        if (i > 0) sql += ", ";
        sql += PickAggregate(i);
      }
    } else {
      sql += "l_orderkey, l_linenumber, " + PickNumericExpr("p");
    }
    sql += " FROM lineitem";
    if (join) sql += " JOIN orders ON l_orderkey = o_orderkey";
    if (rng_.Bernoulli(0.75)) sql += " WHERE " + PickPredicate(join);
    if (!group_col.empty()) sql += " GROUP BY " + group_col;
    return sql;
  }

 private:
  std::string PickGroupColumn(bool join) {
    const char* own[] = {"l_returnflag", "l_linenumber", "l_suppkey"};
    const char* joined[] = {"l_returnflag", "l_linenumber", "o_priority"};
    return join ? joined[rng_.Uniform(3)] : own[rng_.Uniform(3)];
  }

  std::string PickNumericColumn() {
    const char* cols[] = {"l_quantity", "l_extendedprice", "l_discount",
                          "l_suppkey"};
    return cols[rng_.Uniform(4)];
  }

  std::string PickAggregate(int i) {
    std::string col = PickNumericColumn();
    std::string alias = " AS a" + std::to_string(i);
    switch (rng_.Uniform(5)) {
      case 0: return "COUNT(*)" + alias;
      case 1: return "SUM(" + col + ")" + alias;
      case 2: return "MIN(" + col + ")" + alias;
      case 3: return "MAX(" + col + ")" + alias;
      default: return "AVG(" + col + ")" + alias;
    }
  }

  std::string PickNumericExpr(const std::string& alias) {
    std::string col = PickNumericColumn();
    switch (rng_.Uniform(3)) {
      case 0: return col + " AS " + alias;
      case 1:
        return col + " * " + std::to_string(1 + rng_.Uniform(4)) + " AS " +
               alias;
      default: return col + " + " + PickNumericColumn() + " AS " + alias;
    }
  }

  std::string PickComparison() {
    switch (rng_.Uniform(4)) {
      case 0:
        return "l_quantity < " + std::to_string(rng_.Uniform(50));
      case 1:
        return "l_suppkey = " + std::to_string(rng_.Uniform(40));
      case 2: {
        uint64_t lo = rng_.Uniform(30);
        return "l_quantity BETWEEN " + std::to_string(lo) + " AND " +
               std::to_string(lo + 1 + rng_.Uniform(20));
      }
      default:
        return std::string("l_returnflag = '") +
               (rng_.Bernoulli(0.5) ? "A" : "R") + "'";
    }
  }

  std::string PickPredicate(bool join) {
    std::string pred = PickComparison();
    if (rng_.Bernoulli(0.4)) pred += " AND " + PickComparison();
    if (join && rng_.Bernoulli(0.3)) pred += " AND o_custkey < 60";
    return pred;
  }

  Random rng_;
};

class DifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dfs::FileSystemOptions fs_options;
    fs_options.block_size = 128 * 1024;
    fs_ = std::make_unique<dfs::FileSystem>(fs_options);
    catalog_ = std::make_unique<Catalog>(fs_.get());

    // TPC-H-shaped lineitem: keys cluster (several lines per order),
    // quantities/prices/discounts in TPC-H-ish ranges, skewed flags.
    std::vector<Row> lineitem;
    Random rng(7);
    for (int i = 0; i < 3000; ++i) {
      int64_t orderkey = i / 4;
      const char* flags[] = {"N", "N", "N", "A", "R"};
      lineitem.push_back(
          {Value::Int(orderkey), Value::Int(i % 7 + 1),
           Value::Int(static_cast<int64_t>(rng.Uniform(40))),
           Value::Int(static_cast<int64_t>(1 + rng.Uniform(50))),
           Value::Double(900.0 + static_cast<double>(rng.Uniform(100000)) / 100.0),
           Value::Double(static_cast<double>(rng.Uniform(11)) / 100.0),
           Value::String(flags[rng.Uniform(5)])});
    }
    ASSERT_TRUE(
        datagen::CreateAndLoad(
            catalog_.get(), "lineitem",
            *TypeDescription::Parse(
                "struct<l_orderkey:bigint,l_linenumber:bigint,"
                "l_suppkey:bigint,l_quantity:bigint,"
                "l_extendedprice:double,l_discount:double,"
                "l_returnflag:string>"),
            formats::FormatKind::kOrcFile, codec::CompressionKind::kNone,
            lineitem, 3)
            .ok());

    std::vector<Row> orders;
    const char* priorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-LOW"};
    for (int i = 0; i < 750; ++i) {
      orders.push_back({Value::Int(i), Value::Int(i % 100),
                        Value::String(priorities[i % 4])});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "orders",
                    *TypeDescription::Parse(
                        "struct<o_orderkey:bigint,o_custkey:bigint,"
                        "o_priority:string>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, orders, 2)
                    .ok());
  }

  Result<QueryResult> Execute(const std::string& sql, bool vectorized,
                              uint64_t cache_seed = 0) {
    DriverOptions options;
    options.num_workers = 2;
    options.vectorized_execution = vectorized;
    // Randomize the session caches per (seed, engine): caching is a pure
    // performance layer, so any cache state — off, tiny (constant eviction
    // churn), or default — must leave results untouched.
    Random cache_rng(cache_seed * 2 + (vectorized ? 1 : 0));
    switch (cache_rng.Uniform(3)) {
      case 0:
        options.block_cache_bytes = 0;
        options.metadata_cache_bytes = 0;
        break;
      case 1:
        options.block_cache_bytes = 16 * 1024;
        options.metadata_cache_bytes = 4 * 1024;
        break;
      default:
        break;  // Default budgets.
    }
    // Late materialization and SIMD dispatch are pure performance layers
    // too: toggle them per (seed, engine) so the sweep covers two-phase vs
    // eager ORC reads and AVX2 vs scalar kernels in every combination.
    options.enable_late_materialization = cache_rng.Uniform(2) == 0;
    options.enable_simd = cache_rng.Uniform(2) == 0;
    Driver driver(fs_.get(), catalog_.get(), options);
    return driver.Execute(sql);
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

/// Orders rows deterministically by Value::Compare so both engines' task
/// interleavings canonicalize identically.
void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
}

/// Exact for ints/strings/nulls; tolerant for doubles (the engines may sum
/// partials in different groupings).
void ExpectRowsEqual(const std::vector<Row>& row_mode,
                     const std::vector<Row>& vec_mode,
                     const std::string& context) {
  ASSERT_EQ(row_mode.size(), vec_mode.size()) << context;
  for (size_t r = 0; r < row_mode.size(); ++r) {
    ASSERT_EQ(row_mode[r].size(), vec_mode[r].size()) << context;
    for (size_t c = 0; c < row_mode[r].size(); ++c) {
      const Value& a = row_mode[r][c];
      const Value& b = vec_mode[r][c];
      if (a.is_double() && b.is_double()) {
        double tolerance =
            1e-9 * std::max(1.0, std::max(std::abs(a.AsDouble()),
                                          std::abs(b.AsDouble())));
        EXPECT_NEAR(a.AsDouble(), b.AsDouble(), tolerance)
            << context << " row " << r << " col " << c;
      } else {
        EXPECT_EQ(a.Compare(b), 0)
            << context << " row " << r << " col " << c << ": "
            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

TEST_F(DifferentialTest, RowAndVectorizedAgreeOnRandomQueries) {
  const int kSeeds = 40;
  int vectorized_jobs = 0;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    std::string sql = QueryGen(seed).Generate();
    const std::string context =
        "seed " + std::to_string(seed) + ": " + sql;

    auto row_result = Execute(sql, /*vectorized=*/false, seed);
    ASSERT_TRUE(row_result.ok())
        << context << "\nrow engine: " << row_result.status().ToString();
    auto vec_result = Execute(sql, /*vectorized=*/true, seed);
    ASSERT_TRUE(vec_result.ok())
        << context << "\nvectorized: " << vec_result.status().ToString();

    SortRows(&row_result->rows);
    SortRows(&vec_result->rows);
    ExpectRowsEqual(row_result->rows, vec_result->rows, context);
    vectorized_jobs += vec_result->num_jobs;
  }
  // If no generated query ever ran a job, the sweep tested nothing.
  EXPECT_GT(vectorized_jobs, 0);
}

TEST_F(DifferentialTest, RandomMutationsAgreeAcrossEnginesAndModel) {
  // DML differential: a random sequence of INSERT INTO (upsert) and DELETE
  // statements against a managed partitioned unique-key table, mirrored
  // into an exact in-memory model. After every mutation the full table is
  // read back on BOTH engines and compared to the model — catching wrong
  // bitmaps, wrong key-index updates, and row/vectorized divergence on
  // merge-on-read state, with the seed printed for replay.
  const int kSeeds = 6;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    const std::string table = "mut" + std::to_string(seed);
    ASSERT_TRUE(Execute("CREATE TABLE " + table +
                            " (k INT, grp INT, amount DOUBLE) "
                            "PARTITIONED BY (grp) UNIQUE KEY (k)",
                        false)
                    .ok());
    Random rng(seed * 131 + 17);
    std::map<int64_t, std::pair<int64_t, double>> model;  // k -> (grp, amt).
    for (int step = 0; step < 8; ++step) {
      const std::string context =
          "seed " + std::to_string(seed) + " step " + std::to_string(step);
      if (model.empty() || rng.Bernoulli(0.7)) {
        const int n = 1 + static_cast<int>(rng.Uniform(15));
        std::string values;
        for (int i = 0; i < n; ++i) {
          const int64_t k = static_cast<int64_t>(rng.Uniform(60));
          const int64_t grp = k % 3;
          const int64_t whole = static_cast<int64_t>(rng.Uniform(1000));
          if (!values.empty()) values += ", ";
          values += "(" + std::to_string(k) + ", " + std::to_string(grp) +
                    ", " + std::to_string(whole) + ".5)";
          model[k] = {grp, static_cast<double>(whole) + 0.5};  // Last wins.
        }
        auto r = Execute("INSERT INTO " + table + " VALUES " + values, false);
        ASSERT_TRUE(r.ok()) << context << ": " << r.status().ToString();
      } else {
        std::string predicate;
        if (rng.Bernoulli(0.5)) {
          const int64_t bound = static_cast<int64_t>(rng.Uniform(60));
          predicate = "k < " + std::to_string(bound);
          for (auto it = model.begin(); it != model.end();) {
            it = it->first < bound ? model.erase(it) : std::next(it);
          }
        } else {
          const int64_t grp = static_cast<int64_t>(rng.Uniform(3));
          predicate = "grp = " + std::to_string(grp);
          for (auto it = model.begin(); it != model.end();) {
            it = it->second.first == grp ? model.erase(it) : std::next(it);
          }
        }
        auto r =
            Execute("DELETE FROM " + table + " WHERE " + predicate, false);
        ASSERT_TRUE(r.ok()) << context << ": " << r.status().ToString();
      }

      const std::string sql = "SELECT k, grp, amount FROM " + table;
      auto row_result = Execute(sql, /*vectorized=*/false, seed + step);
      ASSERT_TRUE(row_result.ok())
          << context << ": " << row_result.status().ToString();
      auto vec_result = Execute(sql, /*vectorized=*/true, seed + step);
      ASSERT_TRUE(vec_result.ok())
          << context << ": " << vec_result.status().ToString();
      std::vector<Row> expected;
      for (const auto& [k, v] : model) {
        expected.push_back(
            {Value::Int(k), Value::Int(v.first), Value::Double(v.second)});
      }
      SortRows(&row_result->rows);
      SortRows(&vec_result->rows);
      SortRows(&expected);
      ExpectRowsEqual(expected, row_result->rows, context + " (row)");
      ExpectRowsEqual(row_result->rows, vec_result->rows,
                      context + " (row vs vec)");
    }
  }
}

TEST_F(DifferentialTest, HandWrittenSpotChecks) {
  // A few fixed queries with independently computable answers, as anchors
  // for the randomized sweep (a bug symmetric across both engines would
  // pass the differential check).
  auto count = Execute("SELECT COUNT(*) FROM lineitem", true);
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->rows.size(), 1u);
  EXPECT_EQ(count->rows[0][0].AsInt(), 3000);

  auto join = Execute(
      "SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
      true);
  ASSERT_TRUE(join.ok());
  ASSERT_EQ(join->rows.size(), 1u);
  EXPECT_EQ(join->rows[0][0].AsInt(), 3000);  // Every line has its order.
}

}  // namespace
}  // namespace minihive::ql
