#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/tpch.h"
#include "ql/driver.h"

namespace minihive::vec {
namespace {

using ql::Catalog;
using ql::Driver;
using ql::DriverOptions;
using ql::QueryResult;

/// TPC-H Q1 analogue over the generated lineitem (shipdate is a day
/// number): one predicate, eight aggregates, grouped by two low-cardinality
/// string columns — the paper's Figure 12 workload.
const char kQ1[] =
    "SELECT l_returnflag, l_linestatus, "
    "  SUM(l_quantity) AS sum_qty, "
    "  SUM(l_extendedprice) AS sum_base_price, "
    "  SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
    "  SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
    "  AVG(l_quantity) AS avg_qty, "
    "  AVG(l_extendedprice) AS avg_price, "
    "  AVG(l_discount) AS avg_disc, "
    "  COUNT(*) AS count_order "
    "FROM tpch_lineitem WHERE l_shipdate <= 10471 "
    "GROUP BY l_returnflag, l_linestatus";

/// TPC-H Q6 analogue: four predicates, one aggregate.
const char kQ6[] =
    "SELECT SUM(l_extendedprice * l_discount) AS revenue "
    "FROM tpch_lineitem "
    "WHERE l_shipdate BETWEEN 8766 AND 9131 "
    "  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";

class VecPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fs_ = new dfs::FileSystem();
    catalog_ = new Catalog(fs_);
    datagen::TpchOptions options;
    options.lineitem_rows = 60000;
    options.orders_rows = 1000;
    options.format = formats::FormatKind::kOrcFile;
    ASSERT_TRUE(datagen::LoadTpch(catalog_, "tpch", options).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete fs_;
  }

  QueryResult MustExecute(const std::string& sql, bool vectorized) {
    DriverOptions options;
    options.vectorized_execution = vectorized;
    Driver driver(fs_, catalog_, options);
    auto result = driver.Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return QueryResult();
    return std::move(result).ValueOrDie();
  }

  static std::vector<std::string> Canonical(const QueryResult& result) {
    std::vector<std::string> rows;
    for (const Row& row : result.rows) {
      std::string s;
      for (const Value& v : row) {
        // Round doubles so row/vector summation-order differences in the
        // same group do not flip the comparison.
        if (v.is_double()) {
          char buf[64];
          snprintf(buf, sizeof(buf), "%.4f", v.AsDouble());
          s += buf;
        } else {
          s += v.ToString();
        }
        s += "|";
      }
      rows.push_back(s);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  static dfs::FileSystem* fs_;
  static Catalog* catalog_;
};

dfs::FileSystem* VecPipelineTest::fs_ = nullptr;
Catalog* VecPipelineTest::catalog_ = nullptr;

TEST_F(VecPipelineTest, Q1VectorizedMatchesRowMode) {
  QueryResult row_mode = MustExecute(kQ1, false);
  QueryResult vec_mode = MustExecute(kQ1, true);
  ASSERT_EQ(row_mode.rows.size(), 6u);  // 3 flags x 2 statuses.
  EXPECT_EQ(Canonical(row_mode), Canonical(vec_mode));
}

TEST_F(VecPipelineTest, Q6VectorizedMatchesRowMode) {
  QueryResult row_mode = MustExecute(kQ6, false);
  QueryResult vec_mode = MustExecute(kQ6, true);
  ASSERT_EQ(row_mode.rows.size(), 1u);
  ASSERT_EQ(vec_mode.rows.size(), 1u);
  EXPECT_NEAR(row_mode.rows[0][0].AsDouble(), vec_mode.rows[0][0].AsDouble(),
              1e-6);
  EXPECT_FALSE(row_mode.rows[0][0].is_null());
}

TEST_F(VecPipelineTest, VectorizationCutsCpuTime) {
  // The headline §6 claim: substantially less cumulative task CPU time.
  QueryResult row_mode = MustExecute(kQ1, false);
  QueryResult vec_mode = MustExecute(kQ1, true);
  EXPECT_LT(vec_mode.counters.cpu_millis(),
            row_mode.counters.cpu_millis())
      << "vectorized Q1 should consume less CPU";
}

TEST_F(VecPipelineTest, ProjectionOnlyQueryVectorizes) {
  const std::string sql =
      "SELECT l_orderkey, l_extendedprice * l_discount AS x "
      "FROM tpch_lineitem WHERE l_quantity < 3";
  QueryResult row_mode = MustExecute(sql, false);
  QueryResult vec_mode = MustExecute(sql, true);
  ASSERT_FALSE(row_mode.rows.empty());
  EXPECT_EQ(Canonical(row_mode), Canonical(vec_mode));
}

TEST_F(VecPipelineTest, UnsupportedShapeFallsBackToRowMode) {
  // OR predicates are not vectorizable; the run must still succeed
  // (validation falls back, paper §6.4).
  const std::string sql =
      "SELECT COUNT(*) AS c FROM tpch_lineitem "
      "WHERE l_returnflag = 'N' OR l_returnflag = 'R'";
  QueryResult row_mode = MustExecute(sql, false);
  QueryResult vec_mode = MustExecute(sql, true);
  ASSERT_EQ(row_mode.rows.size(), 1u);
  EXPECT_EQ(row_mode.rows[0][0].AsInt(), vec_mode.rows[0][0].AsInt());
}

TEST_F(VecPipelineTest, StringFilterVectorizes) {
  const std::string sql =
      "SELECT COUNT(*) AS c, SUM(l_quantity) AS q FROM tpch_lineitem "
      "WHERE l_returnflag = 'R' AND l_shipdate > 9000";
  QueryResult row_mode = MustExecute(sql, false);
  QueryResult vec_mode = MustExecute(sql, true);
  EXPECT_EQ(row_mode.rows[0][0].AsInt(), vec_mode.rows[0][0].AsInt());
  EXPECT_NEAR(row_mode.rows[0][1].AsDouble(), vec_mode.rows[0][1].AsDouble(),
              1e-6);
}

}  // namespace
}  // namespace minihive::vec
