// Tests for the is-repeating optimization (paper §6.2): constant columns
// evaluate in constant time and flow correctly through kernels, filters,
// aggregation, and the ORC reader's dictionary detection.

#include <gtest/gtest.h>

#include "datagen/loader.h"
#include "orc/reader.h"
#include "orc/writer.h"
#include "ql/driver.h"
#include "vec/vector_expressions.h"

namespace minihive::vec {
namespace {

using exec::Expr;
using exec::ExprKind;

TEST(IsRepeatingTest, ConstantExpressionMarksOutput) {
  BatchCompiler compiler({TypeKind::kBigInt});
  int out = -1;
  auto compiled = compiler.CompileProjection(
      *Expr::Literal(Value::Int(99), TypeKind::kBigInt), &out);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto batch = MakeBatchFor(compiler.column_types(), 16);
  batch->size = 16;
  (*compiled)->Evaluate(batch.get());
  EXPECT_TRUE(batch->columns[out]->is_repeating);
  EXPECT_EQ(batch->LongCol(out)->vector[0], 99);
}

TEST(IsRepeatingTest, KernelConstantTimePropagation) {
  // col(repeating) * scalar stays repeating; only slot 0 is computed.
  BatchCompiler compiler({TypeKind::kDouble});
  int out = -1;
  auto compiled = compiler.CompileProjection(
      *Expr::Binary(ExprKind::kMul, Expr::Column(0, TypeKind::kDouble),
                    Expr::Literal(Value::Double(2.0), TypeKind::kDouble)),
      &out);
  ASSERT_TRUE(compiled.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 8);
  auto* in = batch->DoubleCol(0);
  in->vector[0] = 21.0;
  in->vector[1] = -777.0;  // Must never be touched.
  in->is_repeating = true;
  batch->size = 8;
  (*compiled)->Evaluate(batch.get());
  auto* result = batch->DoubleCol(out);
  EXPECT_TRUE(result->is_repeating);
  EXPECT_DOUBLE_EQ(result->vector[0], 42.0);
}

TEST(IsRepeatingTest, ColColBothRepeating) {
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kBigInt});
  int out = -1;
  auto compiled = compiler.CompileProjection(
      *Expr::Binary(ExprKind::kAdd, Expr::Column(0, TypeKind::kBigInt),
                    Expr::Column(1, TypeKind::kBigInt)),
      &out);
  ASSERT_TRUE(compiled.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 8);
  batch->LongCol(0)->vector[0] = 40;
  batch->LongCol(0)->is_repeating = true;
  batch->LongCol(1)->vector[0] = 2;
  batch->LongCol(1)->is_repeating = true;
  batch->size = 8;
  (*compiled)->Evaluate(batch.get());
  EXPECT_TRUE(batch->columns[out]->is_repeating);
  EXPECT_EQ(batch->LongCol(out)->vector[0], 42);
}

TEST(IsRepeatingTest, MixedRepeatingAndNormal) {
  // repeating + normal: the kernel expands via slot-0 reads; output is a
  // full (non-repeating) vector.
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kBigInt});
  int out = -1;
  auto compiled = compiler.CompileProjection(
      *Expr::Binary(ExprKind::kAdd, Expr::Column(0, TypeKind::kBigInt),
                    Expr::Column(1, TypeKind::kBigInt)),
      &out);
  ASSERT_TRUE(compiled.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 4);
  batch->LongCol(0)->vector[0] = 100;
  batch->LongCol(0)->is_repeating = true;
  for (int i = 0; i < 4; ++i) batch->LongCol(1)->vector[i] = i;
  batch->size = 4;
  (*compiled)->Evaluate(batch.get());
  EXPECT_FALSE(batch->columns[out]->is_repeating);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(batch->LongCol(out)->vector[i], 100 + i);
  }
}

TEST(IsRepeatingTest, FiltersReadSlotZero) {
  BatchCompiler compiler({TypeKind::kBigInt});
  auto filters = compiler.CompileFilter(
      Expr::Binary(ExprKind::kGt, Expr::Column(0, TypeKind::kBigInt),
                   Expr::Literal(Value::Int(10), TypeKind::kBigInt)));
  ASSERT_TRUE(filters.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 8);
  batch->LongCol(0)->vector[0] = 50;
  batch->LongCol(0)->is_repeating = true;
  batch->size = 8;
  for (auto& f : *filters) f->Filter(batch.get());
  EXPECT_EQ(batch->SelectedCount(), 8);  // All rows pass via slot 0.

  batch->Reset();
  batch->LongCol(0)->vector[0] = 5;
  batch->LongCol(0)->is_repeating = true;
  batch->size = 8;
  for (auto& f : *filters) f->Filter(batch.get());
  EXPECT_EQ(batch->SelectedCount(), 0);
}

TEST(IsRepeatingTest, OrcReaderDetectsConstantDictionaryGroups) {
  dfs::FileSystem fs;
  TypePtr schema = *TypeDescription::Parse("struct<tag:string,v:bigint>");
  orc::OrcWriterOptions options;
  options.row_index_stride = 10000;
  auto writer =
      std::move(orc::OrcWriter::Create(&fs, "/rep", schema, options))
          .ValueOrDie();
  // A single tag everywhere: dictionary with one entry -> every batch is
  // constant.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(writer->AddRow({Value::String("only"), Value::Int(i)}).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  orc::OrcReadOptions read_options;
  read_options.projected_fields = {0, 1};
  auto reader =
      std::move(orc::OrcReader::Open(&fs, "/rep", read_options)).ValueOrDie();
  auto batch = std::move(reader->CreateBatch()).ValueOrDie();
  int rows = 0;
  bool saw_repeating = false;
  while (*reader->NextBatch(batch.get())) {
    auto* tags = static_cast<BytesColumnVector*>(batch->columns[0].get());
    if (tags->is_repeating) {
      saw_repeating = true;
      EXPECT_EQ(tags->GetView(0), "only");
    }
    rows += batch->size;
  }
  EXPECT_EQ(rows, 5000);
  EXPECT_TRUE(saw_repeating);
}

TEST(IsRepeatingTest, EndToEndGroupByOverConstantColumn) {
  // SQL over a constant string column: the vectorized aggregation must
  // group correctly through the repeating fast path.
  dfs::FileSystem fs;
  ql::Catalog catalog(&fs);
  std::vector<Row> rows;
  for (int i = 0; i < 3000; ++i) {
    rows.push_back({Value::String("const"), Value::Int(i % 10)});
  }
  ASSERT_TRUE(datagen::CreateAndLoad(
                  &catalog, "t",
                  *TypeDescription::Parse("struct<tag:string,v:bigint>"),
                  formats::FormatKind::kOrcFile,
                  codec::CompressionKind::kNone, rows)
                  .ok());
  ql::DriverOptions driver_options;
  driver_options.vectorized_execution = true;
  ql::Driver driver(&fs, &catalog, driver_options);
  auto result =
      driver.Execute("SELECT tag, COUNT(*), SUM(v) FROM t GROUP BY tag");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsString(), "const");
  EXPECT_EQ(result->rows[0][1].AsInt(), 3000);
  EXPECT_EQ(result->rows[0][2].AsInt(), 3000 / 10 * 45);
}

}  // namespace
}  // namespace minihive::vec
