#include "common/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace minihive::cache {
namespace {

std::shared_ptr<const void> Val(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

std::string GetVal(Cache::Handle* handle) {
  return *Cache::value<std::string>(handle);
}

TEST(CacheTest, InsertLookupRoundtrip) {
  Cache cache("test", 4096);
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  Cache::Handle* h = cache.Insert("k1", Val("v1"), 100);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(GetVal(h), "v1");
  cache.Release(h);

  Cache::Handle* h2 = cache.Lookup("k1");
  ASSERT_NE(h2, nullptr);
  EXPECT_EQ(GetVal(h2), "v1");
  cache.Release(h2);

  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_EQ(cache.usage(), 100u);
}

TEST(CacheTest, EvictsLeastRecentlyUsedFirst) {
  // One shard so the LRU order is global and deterministic.
  Cache cache("test", 300, /*num_shards=*/1);
  ASSERT_TRUE(cache.InsertAndRelease("a", Val("a"), 100));
  ASSERT_TRUE(cache.InsertAndRelease("b", Val("b"), 100));
  ASSERT_TRUE(cache.InsertAndRelease("c", Val("c"), 100));

  // Touch "a" so "b" is now the least recently used.
  Cache::Handle* h = cache.Lookup("a");
  ASSERT_NE(h, nullptr);
  cache.Release(h);

  ASSERT_TRUE(cache.InsertAndRelease("d", Val("d"), 100));
  EXPECT_EQ(cache.Lookup("b"), nullptr);  // Evicted.
  for (const char* live : {"a", "c", "d"}) {
    Cache::Handle* lh = cache.Lookup(live);
    ASSERT_NE(lh, nullptr) << live;
    cache.Release(lh);
  }
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().evicted_bytes, 100u);
  EXPECT_LE(cache.usage(), cache.capacity());
}

TEST(CacheTest, BudgetNeverExceededByInsertSweep) {
  Cache cache("test", 1000, /*num_shards=*/1);
  for (int i = 0; i < 100; ++i) {
    cache.InsertAndRelease("k" + std::to_string(i), Val("x"), 90);
    EXPECT_LE(cache.usage(), cache.capacity());
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(CacheTest, PinnedEntriesSurvivePressureAndBlockInserts) {
  Cache cache("test", 300, /*num_shards=*/1);
  Cache::Handle* pinned = cache.Insert("pin", Val("pinned"), 200);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(cache.pinned_usage(), 200u);

  // Fits beside the pin.
  ASSERT_TRUE(cache.InsertAndRelease("small", Val("s"), 100));
  // Does not fit: the pin cannot be evicted, so the insert is refused
  // rather than overcommitting.
  EXPECT_FALSE(cache.InsertAndRelease("big", Val("b"), 250));
  EXPECT_EQ(cache.stats().insert_rejects, 1u);
  EXPECT_LE(cache.usage(), cache.capacity());

  // The pinned entry is still resident and intact.
  EXPECT_EQ(GetVal(pinned), "pinned");
  Cache::Handle* again = cache.Lookup("pin");
  ASSERT_NE(again, nullptr);
  cache.Release(again);
  cache.Release(pinned);

  // Unpinned now: the big entry can displace it.
  ASSERT_TRUE(cache.InsertAndRelease("big", Val("b"), 250));
  EXPECT_EQ(cache.Lookup("pin"), nullptr);
}

TEST(CacheTest, OversizedChargeRefused) {
  Cache cache("test", 100);
  EXPECT_EQ(cache.Insert("huge", Val("h"), 1 << 20), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
  EXPECT_EQ(cache.stats().insert_rejects, 1u);
}

TEST(CacheTest, ZeroBudgetDisablesCaching) {
  Cache cache("test", 0);
  EXPECT_FALSE(cache.InsertAndRelease("k", Val("v"), 1));
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
}

TEST(CacheTest, ReplaceSameKeyServesNewValueOldPinStaysValid) {
  Cache cache("test", 4096);
  Cache::Handle* old_pin = cache.Insert("k", Val("old"), 100);
  ASSERT_NE(old_pin, nullptr);
  ASSERT_TRUE(cache.InsertAndRelease("k", Val("new"), 100));

  Cache::Handle* h = cache.Lookup("k");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(GetVal(h), "new");
  cache.Release(h);

  // The replaced entry stays alive for its holder until released.
  EXPECT_EQ(GetVal(old_pin), "old");
  cache.Release(old_pin);
  EXPECT_EQ(cache.usage(), 100u);
}

TEST(CacheTest, EraseDropsEntry) {
  Cache cache("test", 4096);
  ASSERT_TRUE(cache.InsertAndRelease("k", Val("v"), 100));
  cache.Erase("k");
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.usage(), 0u);
  cache.Erase("k");  // Erasing a missing key is a no-op.
}

TEST(CacheTest, ValueOutlivesEviction) {
  Cache cache("test", 200, /*num_shards=*/1);
  Cache::Handle* h = cache.Insert("k", Val("survivor"), 150);
  ASSERT_NE(h, nullptr);
  std::shared_ptr<const std::string> value = Cache::value<std::string>(h);
  cache.Release(h);
  // Push the entry out.
  ASSERT_TRUE(cache.InsertAndRelease("other", Val("o"), 150));
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(*value, "survivor");  // shared_ptr keeps the bytes alive.
}

TEST(CacheTest, ConcurrentStressRespectsBudgetAndIntegrity) {
  // The budget contract under contention: at NO observed instant may usage
  // exceed capacity, and a hit must always return the exact bytes inserted
  // under that key. 8 threads × mixed insert/lookup/erase over a keyspace
  // larger than the cache forces constant eviction on every shard.
  constexpr uint64_t kCapacity = 64 * 1024;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeySpace = 256;
  Cache cache("stress", kCapacity);
  std::atomic<bool> failed{false};

  auto worker = [&](int tid) {
    uint64_t rng = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(tid + 1);
    auto next = [&rng]() {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int op = 0; op < kOpsPerThread; ++op) {
      int k = static_cast<int>(next() % kKeySpace);
      std::string key = "key" + std::to_string(k);
      // The value is derived from the key, so any cross-key mixup is
      // detectable from a reader thread.
      std::string expect = "value-for-" + key;
      switch (next() % 4) {
        case 0: {
          size_t charge = 64 + next() % 1024;
          cache.InsertAndRelease(key, Val(expect), charge);
          break;
        }
        case 1:
        case 2: {
          Cache::Handle* h = cache.Lookup(key);
          if (h != nullptr) {
            if (GetVal(h) != expect) failed.store(true);
            cache.Release(h);
          }
          break;
        }
        case 3:
          cache.Erase(key);
          break;
      }
      if (cache.usage() > kCapacity) failed.store(true);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_LE(cache.usage(), kCapacity);
  const Cache::StatsSnapshot stats = cache.stats();
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GE(stats.inserted_bytes, stats.evicted_bytes);
}

TEST(KeyBuilderTest, FieldBoundariesNeverCollide) {
  std::string ab_c = KeyBuilder("t").Add("ab").Add("c").Take();
  std::string a_bc = KeyBuilder("t").Add("a").Add("bc").Take();
  EXPECT_NE(ab_c, a_bc);

  std::string tag_split = KeyBuilder("tx").Add("y").Take();
  std::string tag_whole = KeyBuilder("t").Add("xy").Take();
  EXPECT_NE(tag_split, tag_whole);

  EXPECT_NE(BlockCacheKey("/f", 1, 2), BlockCacheKey("/f", 2, 1));
  EXPECT_NE(BlockCacheKey("/f", 1, 2), BlockCacheKey("/f", 1, 3));
  // Same path, different generation: the invalidation mechanism.
  EXPECT_NE(BlockCacheKey("/f", 1, 0), BlockCacheKey("/f", 2, 0));
}

TEST(CacheManagerTest, ZeroBudgetDisablesLevel) {
  CacheManager both(1024, 2048);
  ASSERT_NE(both.block_cache(), nullptr);
  ASSERT_NE(both.metadata_cache(), nullptr);
  EXPECT_EQ(both.block_cache()->capacity(), 1024u);
  EXPECT_EQ(both.metadata_cache()->capacity(), 2048u);

  CacheManager blocks_only(1024, 0);
  EXPECT_NE(blocks_only.block_cache(), nullptr);
  EXPECT_EQ(blocks_only.metadata_cache(), nullptr);

  CacheManager meta_only(0, 1024);
  EXPECT_EQ(meta_only.block_cache(), nullptr);
  EXPECT_NE(meta_only.metadata_cache(), nullptr);
}

}  // namespace
}  // namespace minihive::cache
