// Serialization round-trips for the ORC physical-layout structures.

#include "orc/layout.h"

#include <gtest/gtest.h>

namespace minihive::orc {
namespace {

TEST(StripeFooterTest, RoundTrip) {
  StripeFooter footer;
  footer.streams = {{0, StreamKind::kPresent, 120},
                    {1, StreamKind::kData, 4096},
                    {1, StreamKind::kDictionaryData, 999},
                    {2, StreamKind::kLength, 32}};
  footer.encodings = {ColumnEncoding::kDirect, ColumnEncoding::kDictionary,
                      ColumnEncoding::kDirect};
  footer.dictionary_sizes = {0, 57, 0};
  footer.num_groups = 2;
  footer.instance_counts = {{10, 20}, {10, 20}, {33, 44}};
  footer.nonnull_counts = {{10, 20}, {9, 18}, {30, 40}};

  std::string bytes;
  footer.Serialize(&bytes);
  StripeFooter restored;
  ASSERT_TRUE(StripeFooter::Deserialize(bytes, &restored).ok());
  ASSERT_EQ(restored.streams.size(), 4u);
  EXPECT_EQ(restored.streams[2].kind, StreamKind::kDictionaryData);
  EXPECT_EQ(restored.streams[2].length, 999u);
  EXPECT_EQ(restored.encodings[1], ColumnEncoding::kDictionary);
  EXPECT_EQ(restored.dictionary_sizes[1], 57u);
  EXPECT_EQ(restored.num_groups, 2u);
  EXPECT_EQ(restored.instance_counts, footer.instance_counts);
  EXPECT_EQ(restored.nonnull_counts, footer.nonnull_counts);
}

TEST(StripeFooterTest, TruncationIsCorruption) {
  StripeFooter footer;
  footer.streams = {{0, StreamKind::kData, 10}};
  footer.encodings = {ColumnEncoding::kDirect};
  footer.dictionary_sizes = {0};
  footer.num_groups = 1;
  footer.instance_counts = {{5}};
  footer.nonnull_counts = {{5}};
  std::string bytes;
  footer.Serialize(&bytes);
  StripeFooter restored;
  EXPECT_FALSE(StripeFooter::Deserialize(
                   std::string_view(bytes).substr(0, bytes.size() - 1),
                   &restored)
                   .ok());
}

TEST(StripeIndexTest, RoundTripDeltaOffsets) {
  StripeIndex index;
  index.segment_ends = {{100, 250, 251}, {4096}};
  ColumnStatistics stats;
  stats.UpdateInt(7);
  index.group_stats = {{stats, stats, stats}, {stats}};
  std::string bytes;
  index.Serialize(&bytes);
  StripeIndex restored;
  ASSERT_TRUE(StripeIndex::Deserialize(bytes, &restored).ok());
  EXPECT_EQ(restored.segment_ends, index.segment_ends);
  ASSERT_EQ(restored.group_stats.size(), 2u);
  EXPECT_EQ(restored.group_stats[0][1].int_min(), 7);
}

TEST(FileTailTest, FooterAndMetadataRoundTrip) {
  FileTail tail;
  tail.schema = *TypeDescription::Parse(
      "struct<a:bigint,b:array<string>,c:double>");
  tail.schema->AssignColumnIds(0);
  tail.num_rows = 123456;
  tail.stripes = {{8, 100, 2000, 50, 60000}, {2158, 90, 1800, 48, 63456}};
  tail.file_stats.resize(tail.schema->ColumnCount());
  tail.file_stats[1].UpdateInt(-9);
  tail.file_stats[1].UpdateInt(99);
  tail.stripe_stats = {tail.file_stats, tail.file_stats};

  std::string footer_bytes;
  SerializeFileFooter(tail, &footer_bytes);
  FileTail restored;
  ASSERT_TRUE(DeserializeFileFooter(footer_bytes, &restored).ok());
  EXPECT_EQ(restored.num_rows, 123456u);
  ASSERT_EQ(restored.stripes.size(), 2u);
  EXPECT_EQ(restored.stripes[1].offset, 2158u);
  EXPECT_EQ(restored.stripes[1].num_rows, 63456u);
  EXPECT_TRUE(restored.schema->Equals(*tail.schema));
  EXPECT_EQ(restored.schema->children()[1]->children()[0]->column_id(), 3);
  EXPECT_EQ(restored.file_stats[1].int_max(), 99);

  std::string metadata_bytes;
  SerializeFileMetadata(tail, &metadata_bytes);
  ASSERT_TRUE(DeserializeFileMetadata(metadata_bytes, &restored).ok());
  ASSERT_EQ(restored.stripe_stats.size(), 2u);
  EXPECT_EQ(restored.stripe_stats[0][1].int_min(), -9);
}

TEST(StreamsForColumnTest, MatchesPaperTable) {
  auto has = [](const std::vector<StreamKind>& streams, StreamKind kind) {
    for (StreamKind s : streams) {
      if (s == kind) return true;
    }
    return false;
  };
  auto direct = StreamsForColumn(TypeKind::kString, false,
                                 ColumnEncoding::kDirect);
  EXPECT_TRUE(has(direct, StreamKind::kData));
  EXPECT_TRUE(has(direct, StreamKind::kLength));
  EXPECT_FALSE(has(direct, StreamKind::kDictionaryData));
  EXPECT_FALSE(has(direct, StreamKind::kPresent));

  auto dict = StreamsForColumn(TypeKind::kString, true,
                               ColumnEncoding::kDictionary);
  EXPECT_TRUE(has(dict, StreamKind::kPresent));
  EXPECT_TRUE(has(dict, StreamKind::kData));
  EXPECT_TRUE(has(dict, StreamKind::kDictionaryData));
  EXPECT_TRUE(has(dict, StreamKind::kDictionaryLength));

  auto strukt = StreamsForColumn(TypeKind::kStruct, false,
                                 ColumnEncoding::kDirect);
  EXPECT_TRUE(strukt.empty()) << "structs carry presence only";
  auto array = StreamsForColumn(TypeKind::kArray, false,
                                ColumnEncoding::kDirect);
  ASSERT_EQ(array.size(), 1u);
  EXPECT_EQ(array[0], StreamKind::kLength);

  EXPECT_TRUE(IsStripeScoped(StreamKind::kDictionaryData));
  EXPECT_FALSE(IsStripeScoped(StreamKind::kData));
}

}  // namespace
}  // namespace minihive::orc
