#include "dfs/file_system.h"

#include <gtest/gtest.h>

#include "common/cache.h"

namespace minihive::dfs {
namespace {

void WriteFile(FileSystem* fs, const std::string& path,
               const std::string& contents) {
  auto w = std::move(fs->Create(path)).ValueOrDie();
  ASSERT_TRUE(w->Append(contents).ok());
  ASSERT_TRUE(w->Close().ok());
}

TEST(FileSystemTest, CreateWriteReadDelete) {
  FileSystem fs;
  auto writer_result = fs.Create("/t/a");
  ASSERT_TRUE(writer_result.ok());
  auto writer = std::move(writer_result).ValueOrDie();
  ASSERT_TRUE(writer->Append("hello ").ok());
  ASSERT_TRUE(writer->Append("world").ok());
  ASSERT_TRUE(writer->Close().ok());

  EXPECT_TRUE(fs.Exists("/t/a"));
  EXPECT_EQ(*fs.FileSize("/t/a"), 11u);

  auto reader_result = fs.Open("/t/a");
  ASSERT_TRUE(reader_result.ok());
  auto reader = std::move(reader_result).ValueOrDie();
  std::string out;
  ASSERT_TRUE(reader->ReadAt(6, 5, &out).ok());
  EXPECT_EQ(out, "world");
  EXPECT_FALSE(reader->ReadAt(6, 6, &out).ok());

  ASSERT_TRUE(fs.Delete("/t/a").ok());
  EXPECT_FALSE(fs.Exists("/t/a"));
  EXPECT_FALSE(fs.Open("/t/a").ok());
}

TEST(FileSystemTest, DuplicateCreateFails) {
  FileSystem fs;
  ASSERT_TRUE(fs.Create("/x").ok());
  EXPECT_TRUE(fs.Create("/x").status().IsAlreadyExists());
}

TEST(FileSystemTest, OpenUnclosedFileFails) {
  FileSystem fs;
  auto writer = std::move(fs.Create("/y")).ValueOrDie();
  EXPECT_FALSE(fs.Open("/y").ok());
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_TRUE(fs.Open("/y").ok());
}

TEST(FileSystemTest, RenameReplacesExistingFile) {
  // POSIX rename semantics: rename over an existing path replaces it. Task
  // commit depends on this — when a commit dies partway and the task is
  // retried, the retry's attempt file renames over the stale part file the
  // earlier half-commit left behind, and the committed output wins.
  FileSystem fs;
  auto stale = std::move(fs.Create("/job/part-0")).ValueOrDie();
  ASSERT_TRUE(stale->Append("stale attempt 0").ok());
  ASSERT_TRUE(stale->Close().ok());

  auto retry = std::move(fs.Create("/job/_attempt-1-0")).ValueOrDie();
  ASSERT_TRUE(retry->Append("committed attempt 1").ok());
  ASSERT_TRUE(retry->Close().ok());

  ASSERT_TRUE(fs.Rename("/job/_attempt-1-0", "/job/part-0").ok());
  EXPECT_FALSE(fs.Exists("/job/_attempt-1-0"));
  auto reader = std::move(fs.Open("/job/part-0")).ValueOrDie();
  std::string out;
  ASSERT_TRUE(reader->ReadAt(0, reader->Size(), &out).ok());
  EXPECT_EQ(out, "committed attempt 1");
  // Exactly one file remains: the replaced target, not a duplicate.
  EXPECT_EQ(fs.List("/job/").size(), 1u);
}

TEST(FileSystemTest, RenameMissingSourceOrOpenFileFails) {
  FileSystem fs;
  EXPECT_TRUE(fs.Rename("/none", "/dst").IsNotFound());
  auto open_file = std::move(fs.Create("/w")).ValueOrDie();
  EXPECT_FALSE(fs.Rename("/w", "/dst").ok());  // Still open for write.
  ASSERT_TRUE(open_file->Close().ok());
  EXPECT_TRUE(fs.Rename("/w", "/dst").ok());
}

TEST(FileSystemTest, ListAndTotalSize) {
  FileSystem fs;
  for (const char* path : {"/tbl/p1", "/tbl/p2", "/other/q"}) {
    auto w = std::move(fs.Create(path)).ValueOrDie();
    ASSERT_TRUE(w->Append("1234").ok());
    ASSERT_TRUE(w->Close().ok());
  }
  EXPECT_EQ(fs.List("/tbl/").size(), 2u);
  EXPECT_EQ(fs.TotalSize("/tbl/"), 8u);
  EXPECT_EQ(fs.List("/nope").size(), 0u);
}

TEST(FileSystemTest, IoStatsCountBytes) {
  FileSystem fs;
  auto w = std::move(fs.Create("/s")).ValueOrDie();
  ASSERT_TRUE(w->Append(std::string(1000, 'x')).ok());
  ASSERT_TRUE(w->Close().ok());
  EXPECT_EQ(fs.stats().bytes_written.load(), 1000u);

  auto r = std::move(fs.Open("/s")).ValueOrDie();
  std::string out;
  ASSERT_TRUE(r->ReadAt(0, 600, &out).ok());
  ASSERT_TRUE(r->ReadAt(600, 400, &out).ok());
  EXPECT_EQ(fs.stats().bytes_read.load(), 1000u);
  EXPECT_EQ(fs.stats().read_ops.load(), 2u);
}

TEST(FileSystemTest, BlockPaddingAndAlignment) {
  FileSystemOptions options;
  options.block_size = 1024;
  FileSystem fs(options);
  auto w = std::move(fs.Create("/pad")).ValueOrDie();
  ASSERT_TRUE(w->Append(std::string(300, 'a')).ok());
  EXPECT_EQ(w->RemainingInBlock(), 1024u - 300u);
  ASSERT_TRUE(w->PadToBlockBoundary().ok());
  EXPECT_EQ(w->Size(), 1024u);
  EXPECT_EQ(w->RemainingInBlock(), 1024u);  // Full block available again.
  ASSERT_TRUE(w->PadToBlockBoundary().ok());  // No-op at a boundary.
  EXPECT_EQ(w->Size(), 1024u);
  ASSERT_TRUE(w->Close().ok());
}

TEST(FileSystemTest, BlockLocationsAndLocality) {
  FileSystemOptions options;
  options.block_size = 100;
  options.num_datanodes = 4;
  options.replication = 2;
  FileSystem fs(options);
  auto w = std::move(fs.Create("/blocks")).ValueOrDie();
  ASSERT_TRUE(w->Append(std::string(350, 'z')).ok());
  ASSERT_TRUE(w->Close().ok());

  auto r = std::move(fs.Open("/blocks")).ValueOrDie();
  auto locations = r->GetBlockLocations(0, 350);
  ASSERT_EQ(locations.size(), 4u);
  EXPECT_EQ(locations[0].offset, 0u);
  EXPECT_EQ(locations[0].length, 100u);
  EXPECT_EQ(locations[3].length, 50u);
  for (const auto& loc : locations) {
    EXPECT_EQ(loc.hosts.size(), 2u);
  }

  // Reading with the host that owns block 0 counts a local read.
  int owner = locations[0].hosts[0];
  std::string out;
  ASSERT_TRUE(r->ReadAt(0, 50, &out, owner).ok());
  EXPECT_EQ(fs.stats().local_block_reads.load(), 1u);
  EXPECT_EQ(fs.stats().remote_block_reads.load(), 0u);

  // An unknown host makes it remote.
  int stranger = -1;
  for (int h = 0; h < 4; ++h) {
    if (h != locations[0].hosts[0] && h != locations[0].hosts[1]) {
      stranger = h;
      break;
    }
  }
  ASSERT_TRUE(r->ReadAt(0, 50, &out, stranger).ok());
  EXPECT_EQ(fs.stats().remote_block_reads.load(), 1u);
}

TEST(FileSystemTest, PathGenerationsBumpOnEveryRewrite) {
  FileSystem fs;
  EXPECT_EQ(fs.PathGeneration("/g"), 0u);
  WriteFile(&fs, "/g", "v1");
  uint64_t g1 = fs.PathGeneration("/g");
  EXPECT_GT(g1, 0u);
  auto r1 = std::move(fs.Open("/g")).ValueOrDie();
  EXPECT_EQ(r1->Generation(), g1);

  // Delete + recreate: the generation keeps counting up, never resets —
  // a reader of the old incarnation never shares cache keys with the new.
  ASSERT_TRUE(fs.Delete("/g").ok());
  EXPECT_GT(fs.PathGeneration("/g"), g1);
  WriteFile(&fs, "/g", "v2");
  uint64_t g2 = fs.PathGeneration("/g");
  EXPECT_GT(g2, g1);
  auto r2 = std::move(fs.Open("/g")).ValueOrDie();
  EXPECT_NE(r1->Generation(), r2->Generation());

  // Rename bumps both endpoints.
  WriteFile(&fs, "/src", "v3");
  uint64_t src_gen = fs.PathGeneration("/src");
  ASSERT_TRUE(fs.Rename("/src", "/g").ok());
  EXPECT_GT(fs.PathGeneration("/g"), g2);
  EXPECT_GT(fs.PathGeneration("/src"), src_gen);
}

TEST(FileSystemTest, BlockCacheServesRepeatReadsAndSplitsIoStats) {
  FileSystemOptions options;
  options.block_size = 100;
  FileSystem fs(options);
  auto caches = std::make_shared<cache::CacheManager>(/*block_cache_bytes=*/1 << 20,
                             /*metadata_cache_bytes=*/0);
  fs.set_cache_manager(caches);

  WriteFile(&fs, "/c", std::string(250, 'k'));
  auto r = std::move(fs.Open("/c")).ValueOrDie();
  std::string out;
  // Cold read: all physical, populates blocks 0-2.
  ASSERT_TRUE(r->ReadAt(0, 250, &out).ok());
  EXPECT_EQ(fs.stats().bytes_read_physical.load(), 250u);
  EXPECT_EQ(fs.stats().bytes_read_cached.load(), 0u);

  // Warm read of a sub-range: fully served from cached blocks.
  ASSERT_TRUE(r->ReadAt(50, 150, &out).ok());
  EXPECT_EQ(out, std::string(150, 'k'));
  EXPECT_EQ(fs.stats().bytes_read_cached.load(), 150u);
  EXPECT_EQ(fs.stats().bytes_read_physical.load(), 250u);
  EXPECT_GT(caches->block_cache()->stats().hits, 0u);

  // The aggregate invariant: physical + cached == bytes_read, always.
  EXPECT_EQ(fs.stats().bytes_read_physical.load() +
                fs.stats().bytes_read_cached.load(),
            fs.stats().bytes_read.load());

  // A second reader of the same path+generation shares the blocks.
  auto r2 = std::move(fs.Open("/c")).ValueOrDie();
  ASSERT_TRUE(r2->ReadAt(200, 50, &out).ok());
  EXPECT_EQ(fs.stats().bytes_read_cached.load(), 200u);

  fs.set_cache_manager(nullptr);
}

TEST(FileSystemTest, UncachedIoIsAllPhysical) {
  FileSystem fs;
  WriteFile(&fs, "/p", std::string(500, 'y'));
  auto r = std::move(fs.Open("/p")).ValueOrDie();
  std::string out;
  ASSERT_TRUE(r->ReadAt(0, 500, &out).ok());
  ASSERT_TRUE(r->ReadAt(0, 500, &out).ok());
  EXPECT_EQ(fs.stats().bytes_read.load(), 1000u);
  EXPECT_EQ(fs.stats().bytes_read_physical.load(), 1000u);
  EXPECT_EQ(fs.stats().bytes_read_cached.load(), 0u);
}

TEST(FileSystemTest, RangeReadSpanningBlocksCountsEachBlock) {
  FileSystemOptions options;
  options.block_size = 100;
  FileSystem fs(options);
  auto w = std::move(fs.Create("/span")).ValueOrDie();
  ASSERT_TRUE(w->Append(std::string(250, 'q')).ok());
  ASSERT_TRUE(w->Close().ok());
  auto r = std::move(fs.Open("/span")).ValueOrDie();
  std::string out;
  ASSERT_TRUE(r->ReadAt(50, 200, &out).ok());  // Touches blocks 0,1,2.
  EXPECT_EQ(fs.stats().remote_block_reads.load() +
                fs.stats().local_block_reads.load(),
            3u);
}

}  // namespace
}  // namespace minihive::dfs
