// Split-boundary property sweep: for every format, chopping a file into
// byte-range splits of ANY size (including pathological ones landing inside
// sync markers, headers, varints, or stripes) must yield every row exactly
// once across the splits.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/random.h"
#include "formats/format.h"

namespace minihive::formats {
namespace {

struct SweepCase {
  FormatKind kind;
  int rows;
};

class SplitSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SplitSweepTest, EveryRowExactlyOnceForManySplitSizes) {
  const SweepCase& sweep = GetParam();
  dfs::FileSystem fs;
  const FileFormat* format = GetFileFormat(sweep.kind);
  TypePtr schema =
      *TypeDescription::Parse("struct<id:bigint,payload:string>");
  auto writer =
      std::move(format->CreateWriter(&fs, "/f", schema, WriterOptions()))
          .ValueOrDie();
  Random rng(99);
  for (int i = 0; i < sweep.rows; ++i) {
    ASSERT_TRUE(
        writer
            ->AddRow({Value::Int(i),
                      Value::String(rng.NextString(rng.Uniform(40)))})
            .ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  uint64_t file_size = *fs.FileSize("/f");

  // Sweep a mix of divisor-unfriendly split sizes, plus randomized ones.
  std::vector<uint64_t> split_sizes = {1777, 4096, 65537,
                                       file_size / 3 + 1, file_size};
  Random size_rng(5);
  for (int i = 0; i < 3; ++i) {
    split_sizes.push_back(1000 + size_rng.Uniform(file_size));
  }
  for (uint64_t split_size : split_sizes) {
    std::set<int64_t> seen;
    uint64_t duplicates = 0;
    for (uint64_t offset = 0; offset < file_size; offset += split_size) {
      ReadOptions options;
      options.split_offset = offset;
      options.split_length = split_size;
      auto reader =
          std::move(format->OpenReader(&fs, "/f", schema, options))
              .ValueOrDie();
      Row row;
      while (true) {
        auto more = reader->Next(&row);
        ASSERT_TRUE(more.ok())
            << more.status().ToString() << " split_size=" << split_size
            << " offset=" << offset;
        if (!*more) break;
        if (!seen.insert(row[0].AsInt()).second) ++duplicates;
      }
    }
    EXPECT_EQ(duplicates, 0u) << "split_size=" << split_size;
    EXPECT_EQ(seen.size(), static_cast<size_t>(sweep.rows))
        << "split_size=" << split_size;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitSweepTest,
    ::testing::Values(SweepCase{FormatKind::kTextFile, 20000},
                      SweepCase{FormatKind::kSequenceFile, 20000},
                      SweepCase{FormatKind::kRcFile, 20000},
                      SweepCase{FormatKind::kOrcFile, 20000}),
    [](const auto& info) {
      return std::string(FormatKindName(info.param.kind));
    });

}  // namespace
}  // namespace minihive::formats
