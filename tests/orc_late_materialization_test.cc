/// Late-materialization equivalence: the two-phase (PREWHERE-style)
/// vectorized read must hand back byte-identical surviving rows to an eager
/// decode at every selectivity — with nulls, with the metadata cache on or
/// off, and under injected faults (which must surface as typed errors,
/// never as silently wrong rows). Also pins the skipping telemetry:
/// rows_late_skipped / lazy_decodes_avoided fire exactly when phase 1
/// actually rejects rows.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/cache.h"
#include "common/fault.h"
#include "orc/reader.h"
#include "orc/writer.h"

namespace minihive::orc {
namespace {

constexpr int kRows = 20000;
constexpr int64_t kCatRange = 1 << 30;

TypePtr Schema() {
  return *TypeDescription::Parse(
      "struct<id:bigint,cat:bigint,score:double,name:string,pad:string>");
}

/// Pseudo-random category: every 1000-row index group spans nearly the whole
/// [0, kCatRange) domain, so group min/max statistics can never prune on it —
/// skipping must come from phase-1 row evaluation.
int64_t CatOf(int i) {
  return static_cast<int64_t>(static_cast<uint64_t>(i) * 2654435761ULL %
                              kCatRange);
}

Row MakeRow(int i, bool with_nulls) {
  Row row = {Value::Int(i), Value::Int(CatOf(i)), Value::Double(i * 0.25),
             Value::String("name-" + std::to_string(i % 50)),
             Value::String("pad-" + std::to_string(i))};
  if (with_nulls) {
    if (i % 11 == 0) row[1] = Value::Null();
    if (i % 13 == 0) row[2] = Value::Null();
    if (i % 17 == 0) row[3] = Value::Null();
  }
  return row;
}

void WriteFile(dfs::FileSystem* fs, const std::string& path, bool with_nulls) {
  OrcWriterOptions options;
  options.row_index_stride = 1000;
  auto writer =
      std::move(OrcWriter::Create(fs, path, Schema(), options)).ValueOrDie();
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE(writer->AddRow(MakeRow(i, with_nulls)).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

Value BoxCol(vec::VectorizedRowBatch* batch, int col, int row) {
  const vec::ColumnVector* c = batch->columns[col].get();
  int i = c->is_repeating ? 0 : row;
  if (!c->no_nulls && !c->not_null[i]) return Value::Null();
  switch (c->kind()) {
    case vec::VectorKind::kLong:
      return Value::Int(
          static_cast<const vec::LongColumnVector*>(c)->vector[i]);
    case vec::VectorKind::kDouble:
      return Value::Double(
          static_cast<const vec::DoubleColumnVector*>(c)->vector[i]);
    default:
      return Value::String(std::string(
          static_cast<const vec::BytesColumnVector*>(c)->GetView(i)));
  }
}

struct ScanResult {
  std::vector<Row> rows;
  uint64_t rows_late_skipped = 0;
  uint64_t lazy_decodes_avoided = 0;
  uint64_t groups_read = 0;
};

/// Batch-scans `path`, honoring the batch's selection vector (the late
/// reader's phase-1 verdicts); an eager reader returns every group row.
Result<ScanResult> ScanBatches(dfs::FileSystem* fs, const std::string& path,
                               const SearchArgument* sarg, bool late,
                               bool use_metadata_cache = true) {
  OrcReadOptions options;
  options.projected_fields = {0, 1, 2, 3, 4};
  options.sarg = sarg;
  options.enable_late_materialization = late;
  options.use_metadata_cache = use_metadata_cache;
  auto reader_or = OrcReader::Open(fs, path, options);
  MINIHIVE_RETURN_IF_ERROR(reader_or.status());
  auto reader = std::move(reader_or).ValueOrDie();
  auto batch = std::move(reader->CreateBatch()).ValueOrDie();
  ScanResult result;
  while (true) {
    auto more = reader->NextBatch(batch.get());
    MINIHIVE_RETURN_IF_ERROR(more.status());
    if (!*more) break;
    int n = batch->SelectedCount();
    for (int j = 0; j < n; ++j) {
      int i = batch->selected_in_use ? batch->selected[j] : j;
      Row row;
      for (int c = 0; c < 5; ++c) row.push_back(BoxCol(batch.get(), c, i));
      result.rows.push_back(std::move(row));
    }
  }
  result.rows_late_skipped = reader->rows_late_skipped();
  result.lazy_decodes_avoided = reader->lazy_decodes_avoided();
  result.groups_read = reader->groups_read();
  return result;
}

void ExpectSameRows(const std::vector<Row>& expected,
                    const std::vector<Row>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t r = 0; r < expected.size(); ++r) {
    for (size_t c = 0; c < expected[r].size(); ++c) {
      ASSERT_EQ(expected[r][c].Compare(actual[r][c]), 0)
          << "row " << r << " col " << c << ": " << actual[r][c].ToString()
          << " vs expected " << expected[r][c].ToString();
    }
  }
}

/// The eager scan returns every row of every surviving group; applying
/// `pred` to it yields the rows phase 1 must hand through.
template <typename Pred>
std::vector<Row> FilterRows(const std::vector<Row>& rows, Pred pred) {
  std::vector<Row> out;
  for (const Row& row : rows) {
    if (pred(row)) out.push_back(row);
  }
  return out;
}

TEST(OrcLateMaterializationTest, SelectivitySweepMatchesEagerDecode) {
  dfs::FileSystem fs;
  WriteFile(&fs, "/orc/late", /*with_nulls=*/false);

  struct Case {
    const char* label;
    LeafPredicate leaf;
    std::function<bool(int64_t)> pred;  // Row-level truth on cat.
    bool expect_row_skips;  // Phase 1 must reject at least one row.
  };
  // An in-range cat value no row carries: equality on it is 0% selective at
  // row level while group min/max statistics still say "maybe".
  std::set<int64_t> cats;
  for (int i = 0; i < kRows; ++i) cats.insert(CatOf(i));
  int64_t absent = kCatRange / 2;
  while (cats.count(absent) != 0) ++absent;

  std::vector<Case> cases = {
      {"0%",
       {1, PredicateOp::kEquals, Value::Int(absent), {}, {}},
       [=](int64_t cat) { return cat == absent; },
       true},
      {"1%",
       {1, PredicateOp::kLessThan, Value::Int(kCatRange / 100), {}, {}},
       [](int64_t cat) { return cat < kCatRange / 100; },
       true},
      {"50%",
       {1, PredicateOp::kLessThan, Value::Int(kCatRange / 2), {}, {}},
       [](int64_t cat) { return cat < kCatRange / 2; },
       true},
      {"100%",
       {1, PredicateOp::kGreaterThanEquals, Value::Int(0), {}, {}},
       [](int64_t cat) { return cat >= 0; },
       false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    SearchArgument sarg;
    sarg.AddLeaf(c.leaf);
    ScanResult eager =
        std::move(ScanBatches(&fs, "/orc/late", &sarg, false)).ValueOrDie();
    ScanResult late =
        std::move(ScanBatches(&fs, "/orc/late", &sarg, true)).ValueOrDie();
    EXPECT_GT(late.groups_read, 0u) << "statistics pruned what phase 1 "
                                       "should have handled";
    std::vector<Row> expected = FilterRows(
        eager.rows, [&](const Row& row) { return c.pred(row[1].AsInt()); });
    ExpectSameRows(expected, late.rows);
    EXPECT_EQ(eager.rows_late_skipped, 0u);
    EXPECT_EQ(eager.lazy_decodes_avoided, 0u);
    if (c.expect_row_skips) {
      EXPECT_GT(late.rows_late_skipped, 0u);
    } else {
      EXPECT_EQ(late.rows_late_skipped, 0u);
    }
  }

  // The 0% case must also skip whole lazy-column group decodes.
  SearchArgument none;
  none.AddLeaf({1, PredicateOp::kEquals, Value::Int(absent), {}, {}});
  ScanResult empty =
      std::move(ScanBatches(&fs, "/orc/late", &none, true)).ValueOrDie();
  EXPECT_TRUE(empty.rows.empty());
  EXPECT_GT(empty.lazy_decodes_avoided, 0u);
}

TEST(OrcLateMaterializationTest, NullRowsDropLikeTheEngineFilter) {
  dfs::FileSystem fs;
  WriteFile(&fs, "/orc/late_nulls", /*with_nulls=*/true);

  // cat >= 0 matches every non-null cat; NULL compares not-true and must be
  // rejected by phase 1 exactly like the engine's row filter would.
  SearchArgument sarg;
  sarg.AddLeaf({1, PredicateOp::kGreaterThanEquals, Value::Int(0), {}, {}});
  ScanResult eager =
      std::move(ScanBatches(&fs, "/orc/late_nulls", &sarg, false))
          .ValueOrDie();
  ScanResult late =
      std::move(ScanBatches(&fs, "/orc/late_nulls", &sarg, true)).ValueOrDie();
  std::vector<Row> expected = FilterRows(
      eager.rows, [](const Row& row) { return !row[1].is_null(); });
  ASSERT_FALSE(expected.empty());
  ASSERT_LT(expected.size(), eager.rows.size());
  ExpectSameRows(expected, late.rows);
  EXPECT_GT(late.rows_late_skipped, 0u);

  // IS NULL keeps only the null rows.
  SearchArgument nulls_only;
  nulls_only.AddLeaf({1, PredicateOp::kIsNull, {}, {}, {}});
  ScanResult eager_nulls =
      std::move(ScanBatches(&fs, "/orc/late_nulls", &nulls_only, false))
          .ValueOrDie();
  ScanResult late_nulls =
      std::move(ScanBatches(&fs, "/orc/late_nulls", &nulls_only, true))
          .ValueOrDie();
  ExpectSameRows(FilterRows(eager_nulls.rows,
                            [](const Row& row) { return row[1].is_null(); }),
                 late_nulls.rows);
}

TEST(OrcLateMaterializationTest, MetadataCacheOnAndOffAgree) {
  dfs::FileSystem fs;
  WriteFile(&fs, "/orc/late_cache", /*with_nulls=*/false);
  auto caches = std::make_shared<cache::CacheManager>(4 * 1024 * 1024, 4 * 1024 * 1024);
  fs.set_cache_manager(caches);

  SearchArgument sarg;
  sarg.AddLeaf({1, PredicateOp::kLessThan, Value::Int(kCatRange / 4), {}, {}});
  ScanResult uncached =
      std::move(ScanBatches(&fs, "/orc/late_cache", &sarg, true,
                            /*use_metadata_cache=*/false))
          .ValueOrDie();
  // First cached run populates, second serves from the cache; all three
  // must agree row for row and keep skipping at row level.
  ScanResult warm =
      std::move(ScanBatches(&fs, "/orc/late_cache", &sarg, true)).ValueOrDie();
  ScanResult hot =
      std::move(ScanBatches(&fs, "/orc/late_cache", &sarg, true)).ValueOrDie();
  EXPECT_GT(caches->metadata_cache()->usage(), 0u);
  ExpectSameRows(uncached.rows, warm.rows);
  ExpectSameRows(uncached.rows, hot.rows);
  EXPECT_GT(hot.rows_late_skipped, 0u);
  fs.set_cache_manager(nullptr);
}

TEST(OrcLateMaterializationTest, InjectedFaultsSurfaceAsErrorsNotWrongRows) {
  dfs::FileSystem fs;
  WriteFile(&fs, "/orc/late_fault", /*with_nulls=*/false);
  SearchArgument sarg;
  sarg.AddLeaf({1, PredicateOp::kLessThan, Value::Int(kCatRange / 10), {}, {}});
  ScanResult clean =
      std::move(ScanBatches(&fs, "/orc/late_fault", &sarg, true)).ValueOrDie();
  ASSERT_FALSE(clean.rows.empty());

  int detections = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultConfig config;
    config.seed = seed;
    config.read_flip_probability = 0.02;
    config.path_filter = "/orc/late_fault";
    FaultInjector injector(config);
    fs.set_fault_injector(&injector);
    auto result = ScanBatches(&fs, "/orc/late_fault", &sarg, true);
    fs.set_fault_injector(nullptr);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsCorruption() ||
                  result.status().IsIoError())
          << result.status().ToString();
      ++detections;
      continue;
    }
    if (injector.stats().byte_flips.load() == 0) continue;
    // A flip that went undetected must have landed in dead bytes: the rows
    // are still exactly the clean rows.
    ExpectSameRows(clean.rows, result.ValueOrDie().rows);
  }
  EXPECT_GT(detections, 0) << "no injected flip was ever detected";
}

}  // namespace
}  // namespace minihive::orc
