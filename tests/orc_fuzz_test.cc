// Property/fuzz tests for ORC: random values over a set of schemas
// (including deeply nested complex types), random writer options, random
// null densities — written and read back, compared value-for-value.

#include <gtest/gtest.h>

#include "common/random.h"
#include "orc/reader.h"
#include "orc/writer.h"

namespace minihive::orc {
namespace {

/// Generates a random value of the given type (NULL with probability p).
Value RandomValue(const TypeDescription& type, Random* rng,
                  double null_probability, int depth = 0) {
  if (rng->Bernoulli(null_probability)) return Value::Null();
  switch (type.kind()) {
    case TypeKind::kBoolean:
      return Value::Bool(rng->Bernoulli(0.5));
    case TypeKind::kTinyInt:
      return Value::Int(rng->Range(-128, 127));
    case TypeKind::kSmallInt:
      return Value::Int(rng->Range(-32768, 32767));
    case TypeKind::kInt:
    case TypeKind::kBigInt:
    case TypeKind::kTimestamp:
      return Value::Int(static_cast<int64_t>(rng->Next()));
    case TypeKind::kFloat:
    case TypeKind::kDouble:
      return Value::Double((rng->NextDouble() - 0.5) * 1e9);
    case TypeKind::kString:
      return Value::String(rng->NextString(rng->Uniform(24)));
    case TypeKind::kArray: {
      Value::Array elements;
      uint64_t n = depth > 2 ? 0 : rng->Uniform(4);
      for (uint64_t i = 0; i < n; ++i) {
        elements.push_back(RandomValue(*type.children()[0], rng,
                                       null_probability, depth + 1));
      }
      return Value::MakeArray(std::move(elements));
    }
    case TypeKind::kMap: {
      Value::MapEntries entries;
      uint64_t n = depth > 2 ? 0 : rng->Uniform(3);
      for (uint64_t i = 0; i < n; ++i) {
        entries.push_back(
            {RandomValue(*type.children()[0], rng, 0, depth + 1),
             RandomValue(*type.children()[1], rng, null_probability,
                         depth + 1)});
      }
      return Value::MakeMap(std::move(entries));
    }
    case TypeKind::kStruct: {
      Value::StructFields fields;
      for (const TypePtr& child : type.children()) {
        fields.push_back(
            RandomValue(*child, rng, null_probability, depth + 1));
      }
      return Value::MakeStruct(std::move(fields));
    }
    case TypeKind::kUnion: {
      int tag = static_cast<int>(rng->Uniform(type.children().size()));
      return Value::MakeUnion(
          tag, RandomValue(*type.children()[tag], rng, null_probability,
                           depth + 1));
    }
  }
  return Value::Null();
}

struct FuzzCase {
  std::string name;
  std::string schema;
  double null_probability;
  codec::CompressionKind compression;
  uint64_t stripe_size;
  uint64_t stride;
  int rows;
};

class OrcFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(OrcFuzzTest, WriteReadRoundTrip) {
  const FuzzCase& fuzz = GetParam();
  TypePtr schema = *TypeDescription::Parse(fuzz.schema);
  dfs::FileSystem fs;
  OrcWriterOptions options;
  options.compression = fuzz.compression;
  options.stripe_size = fuzz.stripe_size;
  options.row_index_stride = fuzz.stride;
  auto writer =
      std::move(OrcWriter::Create(&fs, "/fuzz", schema, options)).ValueOrDie();

  Random rng(std::hash<std::string>{}(fuzz.name));
  std::vector<Row> rows;
  for (int i = 0; i < fuzz.rows; ++i) {
    Row row;
    for (const TypePtr& field : schema->children()) {
      row.push_back(RandomValue(*field, &rng, fuzz.null_probability));
    }
    rows.push_back(row);
    ASSERT_TRUE(writer->AddRow(row).ok()) << "row " << i;
  }
  ASSERT_TRUE(writer->Close().ok());

  auto reader = std::move(OrcReader::Open(&fs, "/fuzz")).ValueOrDie();
  EXPECT_EQ(reader->tail().num_rows, static_cast<uint64_t>(fuzz.rows));
  Row row;
  for (int i = 0; i < fuzz.rows; ++i) {
    auto more = reader->NextRow(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(*more) << "premature EOF at " << i;
    ASSERT_EQ(row.size(), rows[i].size());
    for (size_t c = 0; c < row.size(); ++c) {
      ASSERT_EQ(row[c].Compare(rows[i][c]), 0)
          << fuzz.name << " row " << i << " col " << c << ": got "
          << row[c].ToString() << " want " << rows[i][c].ToString();
    }
  }
  EXPECT_FALSE(*reader->NextRow(&row));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, OrcFuzzTest,
    ::testing::Values(
        FuzzCase{"flat_primitives",
                 "struct<a:boolean,b:tinyint,c:smallint,d:int,e:bigint,"
                 "f:float,g:double,h:string,i:timestamp>",
                 0.1, codec::CompressionKind::kNone, 1 << 20, 1000, 5000},
        FuzzCase{"flat_dense_nulls",
                 "struct<a:bigint,b:double,c:string>",
                 0.7, codec::CompressionKind::kFastLz, 1 << 18, 500, 8000},
        FuzzCase{"nested_paper_figure3",
                 "struct<col1:int,col2:array<int>,"
                 "col4:map<string,struct<col7:string,col8:int>>,col9:string>",
                 0.2, codec::CompressionKind::kFastLz, 1 << 18, 777, 3000},
        FuzzCase{"deep_nesting",
                 "struct<a:array<map<string,array<struct<x:int,"
                 "y:array<double>>>>>,b:uniontype<int,string,double>>",
                 0.25, codec::CompressionKind::kDeepLz, 1 << 17, 300, 1500},
        FuzzCase{"tiny_stripes_many_groups",
                 "struct<a:bigint,b:string,c:double>",
                 0.05, codec::CompressionKind::kFastLz, 64 * 1024, 100, 9000},
        FuzzCase{"no_nulls_at_all",
                 "struct<a:bigint,b:string,c:boolean>",
                 0.0, codec::CompressionKind::kNone, 1 << 19, 2048, 6000}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace minihive::orc
