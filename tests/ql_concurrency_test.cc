/// Concurrent multi-query execution through one SessionManager: N threads
/// running distinct queries over the shared worker pool must produce
/// byte-identical results to serial runs, cancellation/deadline of one
/// query must never perturb another, and admission rejection must be typed
/// and leak-free (no stray scratch or attempt files).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/query_context.h"
#include "common/session.h"
#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dfs::FileSystemOptions fs_options;
    fs_options.block_size = 64 * 1024;  // Several blocks => several splits.
    fs_ = std::make_unique<dfs::FileSystem>(fs_options);
    catalog_ = std::make_unique<Catalog>(fs_.get());

    std::vector<Row> orders;
    for (int i = 0; i < 4000; ++i) {
      orders.push_back({Value::Int(i), Value::Int(i % 128),
                        Value::Double((i % 97) * 2.25),
                        Value::String(i % 3 == 0 ? "open" : "done")});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "orders",
                    *TypeDescription::Parse("struct<o_id:bigint,"
                                            "o_custkey:bigint,o_amount:double,"
                                            "o_status:string>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, orders, 3)
                    .ok());
    std::vector<Row> customers;
    for (int i = 0; i < 128; ++i) {
      customers.push_back(
          {Value::Int(i), Value::String("cust-" + std::to_string(i))});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "customers",
                    *TypeDescription::Parse("struct<c_id:bigint,"
                                            "c_name:string>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, customers, 1)
                    .ok());
  }

  void TearDown() override { fs_->set_fault_injector(nullptr); }

  std::vector<std::string> LeakedTempFiles() { return fs_->List("/tmp/"); }

  /// The per-thread workload: distinct queries with distinct shapes
  /// (group-by, filter, join) so concurrent queries exercise different
  /// plans against the same shared infrastructure.
  static std::string QueryForThread(int t) {
    switch (t % 4) {
      case 0:
        return "SELECT o_custkey, COUNT(*), SUM(o_amount) FROM orders "
               "GROUP BY o_custkey";
      case 1:
        return "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status";
      case 2:
        return "SELECT o_id, o_amount FROM orders "
               "WHERE o_amount > 100.0 AND o_status = 'open'";
      default:
        return "SELECT c_name, COUNT(*) FROM orders JOIN customers "
               "ON o_custkey = c_id GROUP BY c_name";
    }
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

/// Rows as one comparable byte string, order-preserving.
std::string Canonical(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& row : rows) {
    for (const Value& v : row) {
      out += v.ToString();
      out += '\x01';
    }
    out += '\x02';
  }
  return out;
}

TEST_F(ConcurrencyTest, ConcurrentQueriesMatchSerialByteForByte) {
  constexpr int kThreads = 8;
  // Serial reference runs, standalone driver (no session).
  std::vector<std::string> want(kThreads);
  {
    Driver driver(fs_.get(), catalog_.get(), DriverOptions());
    for (int t = 0; t < kThreads; ++t) {
      auto result = driver.Execute(QueryForThread(t));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      want[t] = Canonical(result->rows);
    }
  }

  SessionManagerOptions session_options;
  session_options.num_workers = 4;
  SessionManager manager(session_options);
  std::unique_ptr<Session> session = manager.NewSession("test");
  std::vector<std::string> got(kThreads);
  std::vector<Status> statuses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DriverOptions options;
      options.session = session.get();
      // Half the drivers run vectorized+SIMD, half row-mode scalar: the
      // arms are byte-identical by construction, and concurrent mixing
      // must not change that.
      options.vectorized_execution = t % 2 == 0;
      options.enable_simd = t % 2 == 0;
      Driver driver(fs_.get(), catalog_.get(), options);
      auto result = driver.Execute(QueryForThread(t));
      statuses[t] = result.status();
      if (result.ok()) got[t] = Canonical(result->rows);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[t].ok()) << "thread " << t << ": "
                                  << statuses[t].ToString();
    EXPECT_EQ(got[t], want[t]) << "thread " << t << " diverged from serial";
  }
  EXPECT_TRUE(LeakedTempFiles().empty());
  // Every query went through admission and was released again.
  EXPECT_EQ(manager.root_budget()->used(),
            session_options.block_cache_bytes +
                session_options.metadata_cache_bytes);
}

TEST_F(ConcurrencyTest, CancellingOneQueryNeverPerturbsOthers) {
  SessionManagerOptions session_options;
  session_options.num_workers = 4;
  SessionManager manager(session_options);
  std::unique_ptr<Session> session = manager.NewSession("test");

  // The victim's reads stall on the orders table; the survivor queries the
  // customers table only, so the fault injection cannot touch it.
  FaultConfig faults;
  faults.read_delay_probability = 1.0;
  faults.delay_millis = 20;
  faults.path_filter = "/warehouse/orders";
  FaultInjector injector(faults);
  fs_->set_fault_injector(&injector);

  auto token = std::make_shared<CancellationToken>();
  Status victim_status, survivor_status;
  size_t survivor_rows = 0;
  std::thread victim([&] {
    DriverOptions options;
    options.session = session.get();
    Driver driver(fs_.get(), catalog_.get(), options);
    driver.set_cancellation_token(token);
    auto result = driver.Execute(
        "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey");
    victim_status = result.status();
  });
  std::thread survivor([&] {
    DriverOptions options;
    options.session = session.get();
    Driver driver(fs_.get(), catalog_.get(), options);
    auto result =
        driver.Execute("SELECT c_id, c_name FROM customers");
    survivor_status = result.status();
    if (result.ok()) survivor_rows = result->rows.size();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  token->Cancel();
  victim.join();
  survivor.join();
  fs_->set_fault_injector(nullptr);

  EXPECT_TRUE(victim_status.IsCancelled()) << victim_status.ToString();
  ASSERT_TRUE(survivor_status.ok()) << survivor_status.ToString();
  EXPECT_EQ(survivor_rows, 128u);
  EXPECT_TRUE(LeakedTempFiles().empty())
      << "cancelled query leaked temp/attempt files";
}

TEST_F(ConcurrencyTest, DeadlineOfOneQueryIsInvisibleToOthers) {
  SessionManagerOptions session_options;
  session_options.num_workers = 4;
  SessionManager manager(session_options);
  std::unique_ptr<Session> session = manager.NewSession("test");

  FaultConfig faults;
  faults.read_delay_probability = 1.0;
  faults.delay_millis = 20;
  faults.path_filter = "/warehouse/orders";
  FaultInjector injector(faults);
  fs_->set_fault_injector(&injector);

  Status doomed_status, healthy_status;
  std::thread doomed([&] {
    DriverOptions options;
    options.session = session.get();
    options.query_timeout_millis = 100;
    Driver driver(fs_.get(), catalog_.get(), options);
    auto result = driver.Execute(
        "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey");
    doomed_status = result.status();
  });
  std::thread healthy([&] {
    DriverOptions options;
    options.session = session.get();
    Driver driver(fs_.get(), catalog_.get(), options);
    auto result = driver.Execute("SELECT COUNT(*) FROM customers");
    healthy_status = result.status();
  });
  doomed.join();
  healthy.join();
  fs_->set_fault_injector(nullptr);

  EXPECT_TRUE(doomed_status.IsDeadlineExceeded()) << doomed_status.ToString();
  EXPECT_TRUE(healthy_status.ok()) << healthy_status.ToString();
  EXPECT_TRUE(LeakedTempFiles().empty());
}

TEST_F(ConcurrencyTest, AdmissionRejectionIsTypedLeakFreeAndIsolated) {
  SessionManagerOptions session_options;
  session_options.num_workers = 2;
  // Caches + exactly one 64 MiB query slice fit; a second query cannot be
  // admitted, and queueing is disabled so it rejects immediately.
  session_options.block_cache_bytes = 16ull << 20;
  session_options.metadata_cache_bytes = 4ull << 20;
  session_options.per_query_memory_budget_bytes = 64ull << 20;
  session_options.global_memory_budget_bytes = (16ull + 4 + 64) << 20;
  session_options.max_queued_queries = 0;
  SessionManager manager(session_options);
  std::unique_ptr<Session> session = manager.NewSession("test");

  // Hold the only query slot while a second query asks for admission.
  auto holder = manager.Admit("holder");
  ASSERT_TRUE(holder.ok()) << holder.status().ToString();

  DriverOptions options;
  options.session = session.get();
  Driver driver(fs_.get(), catalog_.get(), options);
  auto rejected = driver.Execute("SELECT COUNT(*) FROM customers");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_TRUE(LeakedTempFiles().empty())
      << "rejected query left scratch files";

  // Releasing the slot makes the same driver usable again — rejection
  // poisoned nothing.
  holder = Status::Internal("drop");
  auto retried = driver.Execute("SELECT COUNT(*) FROM customers");
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
}

TEST_F(ConcurrencyTest, QueuedQueryRunsAfterBudgetFrees) {
  SessionManagerOptions session_options;
  session_options.num_workers = 2;
  session_options.block_cache_bytes = 16ull << 20;
  session_options.metadata_cache_bytes = 4ull << 20;
  session_options.per_query_memory_budget_bytes = 64ull << 20;
  session_options.global_memory_budget_bytes = (16ull + 4 + 64) << 20;
  session_options.max_queued_queries = 8;
  session_options.admission_queue_timeout_millis = 10000;
  SessionManager manager(session_options);
  std::unique_ptr<Session> session = manager.NewSession("test");

  auto holder = manager.Admit("holder");
  ASSERT_TRUE(holder.ok());
  std::atomic<bool> query_done{false};
  std::thread queued([&] {
    DriverOptions options;
    options.session = session.get();
    Driver driver(fs_.get(), catalog_.get(), options);
    auto result = driver.Execute("SELECT COUNT(*) FROM customers");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    query_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(query_done.load());  // still waiting in the admission queue
  holder = Status::Internal("drop");
  queued.join();
  EXPECT_TRUE(query_done.load());
}

}  // namespace
}  // namespace minihive::ql
