// SQL semantic edge cases: NULL join keys, empty inputs, empty results,
// LIMIT corner cases, catalog behaviour.

#include <gtest/gtest.h>

#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<dfs::FileSystem>();
    catalog_ = std::make_unique<Catalog>(fs_.get());

    // left(k, v): includes NULL keys.
    std::vector<Row> left = {
        {Value::Int(1), Value::String("a")},
        {Value::Int(2), Value::String("b")},
        {Value::Null(), Value::String("null-key-1")},
        {Value::Null(), Value::String("null-key-2")},
        {Value::Int(5), Value::String("e")},
    };
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "lhs",
                    *TypeDescription::Parse("struct<k:bigint,v:string>"),
                    formats::FormatKind::kTextFile,
                    codec::CompressionKind::kNone, left)
                    .ok());
    std::vector<Row> right = {
        {Value::Int(1), Value::String("x")},
        {Value::Null(), Value::String("null-right")},
        {Value::Int(5), Value::String("z")},
    };
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "rhs",
                    *TypeDescription::Parse("struct<k:bigint,w:string>"),
                    formats::FormatKind::kTextFile,
                    codec::CompressionKind::kNone, right)
                    .ok());
    // An empty table.
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "empty",
                    *TypeDescription::Parse("struct<k:bigint,v:double>"),
                    formats::FormatKind::kSequenceFile,
                    codec::CompressionKind::kNone, {})
                    .ok());
  }

  QueryResult MustExecute(const std::string& sql,
                          DriverOptions options = DriverOptions()) {
    Driver driver(fs_.get(), catalog_.get(), options);
    auto result = driver.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    return result.ok() ? std::move(result).ValueOrDie() : QueryResult();
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(EdgeCaseTest, InnerJoinDropsNullKeysBothModes) {
  for (bool mapjoin : {false, true}) {
    DriverOptions options;
    options.mapjoin_conversion = mapjoin;
    QueryResult result = MustExecute(
        "SELECT lhs.v, rhs.w FROM lhs JOIN rhs ON lhs.k = rhs.k", options);
    // NULL keys never match, even against NULL (SQL semantics): rows 1, 5.
    EXPECT_EQ(result.rows.size(), 2u) << (mapjoin ? "mapjoin" : "reduce join");
  }
}

TEST_F(EdgeCaseTest, LeftOuterKeepsNullKeyRows) {
  DriverOptions options;
  options.mapjoin_conversion = false;
  QueryResult result = MustExecute(
      "SELECT lhs.v, rhs.w FROM lhs LEFT JOIN rhs ON lhs.k = rhs.k", options);
  ASSERT_EQ(result.rows.size(), 5u);
  int padded = 0;
  for (const Row& row : result.rows) {
    if (row[1].is_null()) ++padded;
  }
  EXPECT_EQ(padded, 3);  // k=2 (no match) and the two NULL-key rows.
}

TEST_F(EdgeCaseTest, EmptyTableScanAndAggregates) {
  QueryResult scan = MustExecute("SELECT k FROM empty WHERE k > 0");
  EXPECT_TRUE(scan.rows.empty());
  QueryResult agg = MustExecute("SELECT COUNT(*), SUM(v) FROM empty");
  ASSERT_EQ(agg.rows.size(), 1u);  // Global aggregates yield one row.
  EXPECT_EQ(agg.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(agg.rows[0][1].is_null());  // SUM of nothing is NULL.
}

TEST_F(EdgeCaseTest, GroupByOnEmptyInputYieldsNoRows) {
  QueryResult result = MustExecute("SELECT k, COUNT(*) FROM empty GROUP BY k");
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(EdgeCaseTest, WhereEliminatesEverything) {
  QueryResult result = MustExecute("SELECT v FROM lhs WHERE k = 12345");
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(EdgeCaseTest, LimitZeroAndOversizedLimit) {
  EXPECT_TRUE(MustExecute("SELECT v FROM lhs LIMIT 0").rows.empty());
  EXPECT_EQ(MustExecute("SELECT v FROM lhs LIMIT 9999").rows.size(), 5u);
}

TEST_F(EdgeCaseTest, JoinAgainstEmptyTable) {
  DriverOptions options;
  options.mapjoin_conversion = false;
  QueryResult inner = MustExecute(
      "SELECT lhs.v FROM lhs JOIN empty ON lhs.k = empty.k", options);
  EXPECT_TRUE(inner.rows.empty());
  QueryResult outer = MustExecute(
      "SELECT lhs.v, empty.v FROM lhs LEFT JOIN empty ON lhs.k = empty.k",
      options);
  EXPECT_EQ(outer.rows.size(), 5u);
}

TEST_F(EdgeCaseTest, MapJoinAgainstEmptySmallTable) {
  DriverOptions options;
  options.mapjoin_conversion = true;
  QueryResult result = MustExecute(
      "SELECT lhs.v FROM lhs JOIN empty ON lhs.k = empty.k", options);
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(EdgeCaseTest, OrderByOnStringsWithDuplicates) {
  QueryResult result =
      MustExecute("SELECT v FROM lhs ORDER BY v DESC");
  ASSERT_EQ(result.rows.size(), 5u);
  for (size_t i = 1; i < result.rows.size(); ++i) {
    EXPECT_GE(result.rows[i - 1][0].AsString(), result.rows[i][0].AsString());
  }
}

TEST_F(EdgeCaseTest, CatalogLifecycle) {
  EXPECT_TRUE(catalog_->HasTable("lhs"));
  EXPECT_FALSE(catalog_->HasTable("nope"));
  EXPECT_TRUE(catalog_->GetTable("nope").status().IsNotFound());
  // Duplicate create fails.
  EXPECT_TRUE(catalog_
                  ->CreateTable("lhs", TypeDescription::CreateStruct(),
                                formats::FormatKind::kTextFile)
                  .IsAlreadyExists());
  // Drop removes files and the entry.
  ASSERT_FALSE(catalog_->TableFiles(**catalog_->GetTable("rhs")).empty());
  ASSERT_TRUE(catalog_->DropTable("rhs").ok());
  EXPECT_FALSE(catalog_->HasTable("rhs"));
  EXPECT_TRUE(fs_->List("/warehouse/rhs/").empty());
  EXPECT_TRUE(catalog_->DropTable("rhs").IsNotFound());
}

TEST_F(EdgeCaseTest, QueryAfterDropFails) {
  ASSERT_TRUE(catalog_->DropTable("rhs").ok());
  Driver driver(fs_.get(), catalog_.get(), DriverOptions());
  EXPECT_FALSE(driver.Execute("SELECT w FROM rhs").ok());
}

}  // namespace
}  // namespace minihive::ql
