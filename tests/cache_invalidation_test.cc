// Generation-keyed cache invalidation: a path that is rewritten (delete +
// recreate, or renamed over) must never serve stale footer or block bytes
// from the session caches. The mechanism under test is the per-path
// generation counter in dfs::FileSystem — every rewrite bumps it, so the
// old incarnation's cache keys are simply never looked up again.

#include <gtest/gtest.h>

#include <string>

#include "common/cache.h"
#include "dfs/file_system.h"
#include "orc/reader.h"
#include "orc/writer.h"

namespace minihive::orc {
namespace {

TypePtr Schema() {
  return *TypeDescription::Parse("struct<id:bigint,tag:string>");
}

void WriteOrc(dfs::FileSystem* fs, const std::string& path, int rows,
              const std::string& tag) {
  auto writer =
      std::move(OrcWriter::Create(fs, path, Schema())).ValueOrDie();
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(
        writer->AddRow({Value::Int(i), Value::String(tag)}).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

// Scans the whole file; returns (row count, tag of the first row).
struct ScanResult {
  int rows = 0;
  std::string first_tag;
  bool tail_cache_hit = false;
};

ScanResult Scan(dfs::FileSystem* fs, const std::string& path) {
  ScanResult result;
  auto reader = std::move(OrcReader::Open(fs, path)).ValueOrDie();
  result.tail_cache_hit = reader->tail_cache_hit();
  Row row;
  while (*reader->NextRow(&row)) {
    if (result.rows == 0) result.first_tag = row[1].AsString();
    ++result.rows;
  }
  return result;
}

TEST(CacheInvalidationTest, RewrittenFileNeverServedStale) {
  dfs::FileSystem fs;
  auto caches = std::make_shared<cache::CacheManager>(/*block_cache_bytes=*/4 << 20,
                             /*metadata_cache_bytes=*/1 << 20);
  fs.set_cache_manager(caches);

  WriteOrc(&fs, "/t/data", 1000, "old");

  // First scan: cold. Second scan: the tail comes from the metadata cache
  // and blocks from the block cache — proving the caches are actually hot
  // before we invalidate them.
  ScanResult cold = Scan(&fs, "/t/data");
  EXPECT_EQ(cold.rows, 1000);
  EXPECT_EQ(cold.first_tag, "old");
  EXPECT_FALSE(cold.tail_cache_hit);

  ScanResult warm = Scan(&fs, "/t/data");
  EXPECT_EQ(warm.rows, 1000);
  EXPECT_EQ(warm.first_tag, "old");
  EXPECT_TRUE(warm.tail_cache_hit);
  EXPECT_GT(caches->block_cache()->stats().hits, 0u);

  // Rewrite in place: delete + recreate with different contents (more rows,
  // different tag). The old tail/blocks are still resident in the caches,
  // but keyed under the old generation.
  ASSERT_TRUE(fs.Delete("/t/data").ok());
  WriteOrc(&fs, "/t/data", 1500, "new");

  ScanResult after_rewrite = Scan(&fs, "/t/data");
  EXPECT_EQ(after_rewrite.rows, 1500);
  EXPECT_EQ(after_rewrite.first_tag, "new");
  EXPECT_FALSE(after_rewrite.tail_cache_hit);  // New generation = cold.

  // Rename over: the task-commit pattern. Warm the caches on the current
  // incarnation first, then rename a third file over it.
  ScanResult warm2 = Scan(&fs, "/t/data");
  EXPECT_TRUE(warm2.tail_cache_hit);

  WriteOrc(&fs, "/t/_attempt", 700, "renamed");
  ASSERT_TRUE(fs.Rename("/t/_attempt", "/t/data").ok());

  ScanResult after_rename = Scan(&fs, "/t/data");
  EXPECT_EQ(after_rename.rows, 700);
  EXPECT_EQ(after_rename.first_tag, "renamed");
  EXPECT_FALSE(after_rename.tail_cache_hit);

  // And the new incarnation caches normally from here on.
  ScanResult warm3 = Scan(&fs, "/t/data");
  EXPECT_EQ(warm3.rows, 700);
  EXPECT_EQ(warm3.first_tag, "renamed");
  EXPECT_TRUE(warm3.tail_cache_hit);

  fs.set_cache_manager(nullptr);
}

TEST(CacheInvalidationTest, UseMetadataCacheKnobBypassesCache) {
  dfs::FileSystem fs;
  auto caches = std::make_shared<cache::CacheManager>(4 << 20, 1 << 20);
  fs.set_cache_manager(caches);
  WriteOrc(&fs, "/t/knob", 400, "x");

  OrcReadOptions no_cache;
  no_cache.use_metadata_cache = false;
  auto r1 = std::move(OrcReader::Open(&fs, "/t/knob", no_cache)).ValueOrDie();
  EXPECT_FALSE(r1->tail_cache_hit());
  EXPECT_EQ(caches->metadata_cache()->usage(), 0u);  // Not populated either.

  // Default options use the cache; only now does it warm up.
  auto r2 = std::move(OrcReader::Open(&fs, "/t/knob")).ValueOrDie();
  EXPECT_FALSE(r2->tail_cache_hit());
  EXPECT_GT(caches->metadata_cache()->usage(), 0u);
  auto r3 = std::move(OrcReader::Open(&fs, "/t/knob")).ValueOrDie();
  EXPECT_TRUE(r3->tail_cache_hit());

  // And the knob also bypasses serving, not just population.
  auto r4 = std::move(OrcReader::Open(&fs, "/t/knob", no_cache)).ValueOrDie();
  EXPECT_FALSE(r4->tail_cache_hit());

  fs.set_cache_manager(nullptr);
}

TEST(CacheInvalidationTest, ReaderOpenedBeforeRewriteKeepsItsIncarnation) {
  // A reader opened before the rewrite captured the old generation at Open,
  // so its reads keep resolving against the old incarnation's cache keys —
  // it must not cross-pollinate with the new file's blocks.
  dfs::FileSystem fs;
  auto caches = std::make_shared<cache::CacheManager>(4 << 20, 1 << 20);
  fs.set_cache_manager(caches);

  WriteOrc(&fs, "/t/pinned", 500, "old");
  auto old_reader =
      std::move(OrcReader::Open(&fs, "/t/pinned")).ValueOrDie();

  ASSERT_TRUE(fs.Delete("/t/pinned").ok());
  WriteOrc(&fs, "/t/pinned", 300, "new");

  // The old reader was opened against the old file object; draining it
  // yields the old rows (the DFS keeps the open file's data alive).
  Row row;
  int old_rows = 0;
  while (*old_reader->NextRow(&row)) {
    EXPECT_EQ(row[1].AsString(), "old");
    ++old_rows;
  }
  EXPECT_EQ(old_rows, 500);

  // A fresh reader sees only the new incarnation.
  ScanResult fresh = Scan(&fs, "/t/pinned");
  EXPECT_EQ(fresh.rows, 300);
  EXPECT_EQ(fresh.first_tag, "new");

  fs.set_cache_manager(nullptr);
}

}  // namespace
}  // namespace minihive::orc
