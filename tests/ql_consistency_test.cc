// Cross-cutting consistency property: for a battery of queries, every
// storage format, execution engine (row vs vectorized), and optimizer
// combination must return exactly the same multiset of rows. This is the
// repository's strongest end-to-end invariant: the paper's advancements are
// performance features and must never change results.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

struct EngineConfig {
  std::string name;
  DriverOptions options;
};

std::vector<EngineConfig> EngineConfigs() {
  std::vector<EngineConfig> configs;
  {
    DriverOptions o;
    o.predicate_pushdown = false;
    o.mapjoin_conversion = false;
    o.merge_maponly_jobs = false;
    o.correlation_optimizer = false;
    o.vectorized_execution = false;
    configs.push_back({"all-off", o});
  }
  {
    DriverOptions o;
    o.predicate_pushdown = true;
    o.mapjoin_conversion = false;
    configs.push_back({"ppd-only", o});
  }
  {
    DriverOptions o;
    o.mapjoin_conversion = true;
    o.merge_maponly_jobs = true;
    configs.push_back({"mapjoin+merge", o});
  }
  {
    DriverOptions o;
    o.mapjoin_conversion = true;
    o.merge_maponly_jobs = true;
    o.correlation_optimizer = true;
    configs.push_back({"correlation", o});
  }
  {
    DriverOptions o;
    o.mapjoin_conversion = true;
    o.merge_maponly_jobs = true;
    o.correlation_optimizer = true;
    o.vectorized_execution = true;
    o.default_reducers = 2;
    o.num_workers = 3;
    configs.push_back({"everything+vectorized", o});
  }
  return configs;
}

class ConsistencyTest
    : public ::testing::TestWithParam<formats::FormatKind> {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<dfs::FileSystem>();
    catalog_ = std::make_unique<Catalog>(fs_.get());
    formats::FormatKind format = GetParam();
    codec::CompressionKind codec = format == formats::FormatKind::kTextFile
                                       ? codec::CompressionKind::kNone
                                       : codec::CompressionKind::kFastLz;
    Random rng(31337);
    auto sales_schema = *TypeDescription::Parse(
        "struct<sale_id:bigint,cust:bigint,item:bigint,qty:bigint,"
        "price:double,note:string>");
    std::vector<Row> sales;
    for (int i = 0; i < 4000; ++i) {
      sales.push_back(
          {Value::Int(i), Value::Int(rng.Range(0, 49)),
           Value::Int(rng.Range(0, 19)), Value::Int(rng.Range(1, 10)),
           rng.Bernoulli(0.05) ? Value::Null()
                               : Value::Double(rng.Range(100, 9999) / 100.0),
           Value::String("note-" + std::to_string(rng.Uniform(8)))});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(catalog_.get(), "sales", sales_schema,
                                       format, codec, sales, 3)
                    .ok());
    auto items_schema = *TypeDescription::Parse(
        "struct<item_id:bigint,category:string,cost:double>");
    std::vector<Row> items;
    for (int i = 0; i < 20; ++i) {
      items.push_back({Value::Int(i),
                       Value::String(i % 2 == 0 ? "widget" : "gadget"),
                       Value::Double(i * 1.25)});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(catalog_.get(), "items", items_schema,
                                       format, codec, items)
                    .ok());
  }

  static std::vector<std::string> Canonical(const QueryResult& result) {
    std::vector<std::string> rows;
    for (const Row& row : result.rows) {
      std::string s;
      for (const Value& v : row) {
        if (v.is_double()) {
          char buf[64];
          snprintf(buf, sizeof(buf), "%.6f", v.AsDouble());
          s += buf;
        } else {
          s += v.ToString();
        }
        s += "|";
      }
      rows.push_back(s);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  void ExpectConsistent(const std::string& sql) {
    std::vector<std::string> reference;
    std::string reference_config;
    for (const EngineConfig& config : EngineConfigs()) {
      Driver driver(fs_.get(), catalog_.get(), config.options);
      auto result = driver.Execute(sql);
      ASSERT_TRUE(result.ok())
          << config.name << ": " << result.status().ToString() << "\n" << sql;
      std::vector<std::string> rows = Canonical(*result);
      if (reference_config.empty()) {
        reference = rows;
        reference_config = config.name;
        EXPECT_FALSE(rows.empty()) << sql;
      } else {
        EXPECT_EQ(rows, reference)
            << sql << "\n  differs between " << reference_config << " and "
            << config.name;
      }
    }
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_P(ConsistencyTest, FilterProjection) {
  ExpectConsistent(
      "SELECT sale_id, qty * price AS amount FROM sales "
      "WHERE qty >= 5 AND price BETWEEN 20.0 AND 60.0");
}

TEST_P(ConsistencyTest, NullSensitiveFilter) {
  ExpectConsistent(
      "SELECT sale_id FROM sales WHERE price IS NULL OR price > 95.0");
}

TEST_P(ConsistencyTest, GlobalAggregates) {
  ExpectConsistent(
      "SELECT COUNT(*), COUNT(price), SUM(price), AVG(price), MIN(qty), "
      "MAX(qty) FROM sales");
}

TEST_P(ConsistencyTest, GroupedAggregates) {
  ExpectConsistent(
      "SELECT cust, COUNT(*) AS n, SUM(qty) AS total_qty, AVG(price) AS ap "
      "FROM sales GROUP BY cust");
}

TEST_P(ConsistencyTest, StringGroupKeys) {
  ExpectConsistent(
      "SELECT note, COUNT(*) AS n FROM sales WHERE qty < 8 GROUP BY note");
}

TEST_P(ConsistencyTest, JoinAggregateOrder) {
  ExpectConsistent(
      "SELECT category, SUM(qty * price) AS revenue, COUNT(*) AS n "
      "FROM sales JOIN items ON sales.item = items.item_id "
      "WHERE price IS NOT NULL "
      "GROUP BY category ORDER BY category");
}

TEST_P(ConsistencyTest, SubqueryCorrelationShape) {
  ExpectConsistent(
      "SELECT s.cust, COUNT(*) AS above_avg FROM sales s "
      "JOIN (SELECT s2.cust AS c, AVG(s2.price) AS ap FROM sales s2 "
      "      GROUP BY s2.cust) agg ON s.cust = agg.c "
      "WHERE s.price > agg.ap GROUP BY s.cust");
}

TEST_P(ConsistencyTest, OrderByDescWithLimit) {
  ExpectConsistent(
      "SELECT sale_id, price FROM sales WHERE price IS NOT NULL "
      "ORDER BY price DESC, sale_id ASC LIMIT 25");
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, ConsistencyTest,
    ::testing::Values(formats::FormatKind::kTextFile,
                      formats::FormatKind::kSequenceFile,
                      formats::FormatKind::kRcFile,
                      formats::FormatKind::kOrcFile),
    [](const auto& info) {
      return std::string(formats::FormatKindName(info.param));
    });

}  // namespace
}  // namespace minihive::ql
