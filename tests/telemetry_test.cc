// Tests for the telemetry subsystem: the process-wide metrics registry
// (exact concurrent counting), trace spans (nesting, ordering, timing) and
// the stable JSON serialization both ride on (golden strings).

#include "common/telemetry.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "mr/engine.h"

namespace minihive {
namespace {

using telemetry::MetricsRegistry;
using telemetry::Span;

// ---- JSON writer goldens.

TEST(JsonWriterTest, GoldenDocument) {
  json::Writer w;
  w.BeginObject();
  w.Key("name").String("q\"uote");
  w.Key("count").Int(-3);
  w.Key("big").UInt(18446744073709551615ull);
  w.Key("ratio").Double(0.5);
  w.Key("flag").Bool(true);
  w.Key("missing").Null();
  w.Key("items").BeginArray().Int(1).Int(2).EndArray();
  w.Key("nested").BeginObject().Key("k").String("v").EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"q\\\"uote\",\n"
            "  \"count\": -3,\n"
            "  \"big\": 18446744073709551615,\n"
            "  \"ratio\": 0.5,\n"
            "  \"flag\": true,\n"
            "  \"missing\": null,\n"
            "  \"items\": [\n"
            "    1,\n"
            "    2\n"
            "  ],\n"
            "  \"nested\": {\n"
            "    \"k\": \"v\"\n"
            "  }\n"
            "}");
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  EXPECT_EQ(json::Escape("a\tb\nc\\d"), "a\\tb\\nc\\\\d");
  EXPECT_EQ(json::Escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, EmptyContainers) {
  json::Writer w;
  w.BeginObject();
  w.Key("a").BeginArray().EndArray();
  w.Key("o").BeginObject().EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\n  \"a\": [],\n  \"o\": {}\n}");
}

// ---- Metrics registry.

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  auto& registry = MetricsRegistry::Global();
  auto* a = registry.GetCounter("test.same_name");
  auto* b = registry.GetCounter("test.same_name");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("test.other_name"), a);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 100000;
  auto* counter =
      MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  counter->Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(MetricsRegistryTest, ConcurrentLookupAndUpdateMixed) {
  // Lookups race with updates through already-held pointers; the total must
  // still be exact and all lookups must agree on one instance.
  constexpr int kThreads = 4;
  constexpr int kOps = 20000;
  MetricsRegistry::Global().GetCounter("test.mixed_counter")->Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kOps; ++i) {
        MetricsRegistry::Global().GetCounter("test.mixed_counter")->Add(2);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.mixed_counter")->value(),
            static_cast<uint64_t>(kThreads) * kOps * 2);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  auto* gauge = MetricsRegistry::Global().GetGauge("test.gauge");
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 7);
  gauge->Reset();
  EXPECT_EQ(gauge->value(), 0);
}

TEST(MetricsRegistryTest, HistogramBucketsAndStats) {
  auto* h = MetricsRegistry::Global().GetHistogram("test.histogram");
  h->Reset();
  h->Record(0);
  h->Record(1);
  h->Record(7);
  h->Record(1024);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->sum(), 1032u);
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 1024u);
  EXPECT_DOUBLE_EQ(h->mean(), 1032.0 / 4);
  EXPECT_EQ(h->bucket(0), 1u);   // zero
  EXPECT_EQ(h->bucket(1), 1u);   // [1, 2)
  EXPECT_EQ(h->bucket(3), 1u);   // [4, 8)
  EXPECT_EQ(h->bucket(11), 1u);  // [1024, 2048)
}

TEST(MetricsRegistryTest, SnapshotContainsRegisteredMetrics) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.snapshot_counter")->Reset();
  registry.GetCounter("test.snapshot_counter")->Add(5);
  auto snapshot = registry.Snapshot();
  bool found = false;
  for (const auto& [name, value] : snapshot) {
    if (name == "test.snapshot_counter") {
      found = true;
      EXPECT_DOUBLE_EQ(value, 5.0);
    }
  }
  EXPECT_TRUE(found);
  // Sorted by name.
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
  }
}

// ---- Spans.

TEST(SpanTest, NestingAndOrdering) {
  Span root("root");
  Span* a = root.StartChild("a");
  Span* b = root.StartChild("b");
  Span* a1 = a->StartChild("a1");
  a1->End();
  a->End();
  b->End();
  root.End();

  auto kids = root.children();
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0]->name(), "a");
  EXPECT_EQ(kids[1]->name(), "b");
  EXPECT_EQ(root.LastChild(), b);
  EXPECT_EQ(root.FindDescendant("a1"), a1);
  EXPECT_EQ(root.FindDescendant("nope"), nullptr);
}

TEST(SpanTest, EndIsIdempotentAndDurationsNest) {
  Span root("root");
  Span* child = root.StartChild("child");
  child->End();
  int64_t first_end = child->end_nanos();
  child->End();  // No-op.
  EXPECT_EQ(child->end_nanos(), first_end);
  root.End();
  EXPECT_GE(child->duration_nanos(), 0);
  EXPECT_GE(root.duration_nanos(), child->duration_nanos());
  EXPECT_GE(child->start_nanos(), root.start_nanos());
}

TEST(SpanTest, ConcurrentStartChildIsSafe) {
  Span root("root");
  constexpr int kThreads = 8;
  constexpr int kChildrenPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&root] {
      for (int i = 0; i < kChildrenPerThread; ++i) {
        root.StartChild("c")->End();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(root.children().size(),
            static_cast<size_t>(kThreads) * kChildrenPerThread);
}

TEST(SpanTest, ForcedDurationOverridesWallTime) {
  Span span("op");
  span.set_duration_nanos(5000000);  // 5 ms.
  span.End();
  EXPECT_EQ(span.duration_nanos(), 5000000);
}

TEST(SpanTest, JsonGoldenWithoutTiming) {
  Span root("query:test");
  root.SetAttr("num_jobs", static_cast<int64_t>(2));
  Span* child = root.StartChild("execute");
  child->SetAttr("kind", "mapreduce");
  child->End();
  root.End();

  json::Writer w;
  root.WriteJson(&w, /*include_timing=*/false);
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"query:test\",\n"
            "  \"attrs\": {\n"
            "    \"num_jobs\": 2\n"
            "  },\n"
            "  \"children\": [\n"
            "    {\n"
            "      \"name\": \"execute\",\n"
            "      \"attrs\": {\n"
            "        \"kind\": \"mapreduce\"\n"
            "      }\n"
            "    }\n"
            "  ]\n"
            "}");
}

TEST(SpanTest, JsonGoldenWithPinnedTiming) {
  Span span("job");
  span.SetTimesForTest(0, 2500000);  // 2.5 ms.
  json::Writer w;
  span.WriteJson(&w, /*include_timing=*/true);
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"job\",\n"
            "  \"duration_ms\": 2.5\n"
            "}");
}

TEST(SpanTest, RenderShowsTreeAndAttrs) {
  Span root("root");
  root.SetAttr("rows", static_cast<uint64_t>(10));
  Span* child = root.StartChild("child");
  child->End();
  root.End();
  std::string rendered = root.Render();
  EXPECT_NE(rendered.find("root"), std::string::npos);
  EXPECT_NE(rendered.find("rows"), std::string::npos);
  EXPECT_NE(rendered.find("  child"), std::string::npos);
}

// ---- JobCounters field tables (copy / accumulate / span export).

TEST(JobCountersTest, CopyTakesSnapshotOfEveryField) {
  mr::JobCounters counters;
  counters.map_input_records = 11;
  counters.shuffled_bytes = 22;
  counters.cpu_nanos = 33;
  counters.map_tasks = 4;
  counters.map_phase_millis = 5.5;
  counters.map_task_failures = 6;

  mr::JobCounters copy(counters);
  EXPECT_EQ(copy.map_input_records.load(), 11u);
  EXPECT_EQ(copy.shuffled_bytes.load(), 22u);
  EXPECT_EQ(copy.cpu_nanos.load(), 33);
  EXPECT_EQ(copy.map_tasks, 4);
  EXPECT_DOUBLE_EQ(copy.map_phase_millis, 5.5);
  EXPECT_EQ(copy.map_task_failures.load(), 6u);

  // The copy is independent.
  counters.map_input_records = 99;
  EXPECT_EQ(copy.map_input_records.load(), 11u);
}

TEST(JobCountersTest, AccumulateCoversEveryField) {
  mr::JobCounters a;
  a.map_output_records = 7;
  a.reduce_tasks = 2;
  a.reduce_phase_millis = 1.5;
  a.retried_task_nanos = 100;
  mr::JobCounters total;
  a.AccumulateInto(&total);
  a.AccumulateInto(&total);
  EXPECT_EQ(total.map_output_records.load(), 14u);
  EXPECT_EQ(total.reduce_tasks, 4);
  EXPECT_DOUBLE_EQ(total.reduce_phase_millis, 3.0);
  EXPECT_EQ(total.retried_task_nanos.load(), 200);
}

TEST(JobCountersTest, ExportToSpanWritesEveryTableEntry) {
  mr::JobCounters counters;
  counters.map_input_records = 42;
  Span span("job");
  counters.ExportToSpan(&span);
  span.SetTimesForTest(0, 1000000);
  json::Writer w;
  span.WriteJson(&w, /*include_timing=*/false);
  const std::string& out = w.str();
  // Every table name must appear as an attribute.
  for (const auto& f : mr::JobCounters::atomic_u64_fields()) {
    EXPECT_NE(out.find(f.name), std::string::npos) << f.name;
  }
  for (const auto& f : mr::JobCounters::atomic_i64_fields()) {
    EXPECT_NE(out.find(f.name), std::string::npos) << f.name;
  }
  for (const auto& f : mr::JobCounters::int_fields()) {
    EXPECT_NE(out.find(f.name), std::string::npos) << f.name;
  }
  for (const auto& f : mr::JobCounters::double_fields()) {
    EXPECT_NE(out.find(f.name), std::string::npos) << f.name;
  }
  EXPECT_NE(out.find("\"map_input_records\": 42"), std::string::npos);
  // Null span is a no-op, not a crash.
  counters.ExportToSpan(nullptr);
}

}  // namespace
}  // namespace minihive
