/// Corruption round-trip for the ORC checksum layer: flip single bytes at
/// sampled offsets of a multi-stripe file and require the reader to either
/// return the exact original rows (the flip landed in dead bytes) or fail
/// with a typed Corruption/IoError — never silently wrong data. Also
/// checks locality of damage: corrupting stripe 2 must not stop stripe 1
/// from being read.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "orc/reader.h"
#include "orc/writer.h"

namespace minihive::orc {
namespace {

TypePtr Schema() {
  return *TypeDescription::Parse(
      "struct<id:bigint,name:string,score:double>");
}

Row MakeRow(int64_t i) {
  return {Value::Int(i), Value::String("name-" + std::to_string(i % 40)),
          Value::Double(i * 0.25)};
}

/// Writes a small-stripe file so corruption tests span several stripes.
void WriteFile(dfs::FileSystem* fs, const std::string& path, int rows) {
  OrcWriterOptions options;
  options.stripe_size = 48 * 1024;
  options.row_index_stride = 1000;
  auto writer =
      std::move(OrcWriter::Create(fs, path, Schema(), options)).ValueOrDie();
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(writer->AddRow(MakeRow(i)).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

std::string ReadWholeFile(dfs::FileSystem* fs, const std::string& path) {
  auto file = std::move(fs->Open(path)).ValueOrDie();
  std::string contents;
  EXPECT_TRUE(file->ReadAt(0, file->Size(), &contents).ok());
  return contents;
}

/// Replaces `path` with `contents` (the DFS is append-only, so corruption
/// means rewrite).
void OverwriteFile(dfs::FileSystem* fs, const std::string& path,
                   const std::string& contents) {
  ASSERT_TRUE(fs->Delete(path).ok());
  auto writer = std::move(fs->Create(path)).ValueOrDie();
  ASSERT_TRUE(writer->Append(contents).ok());
  ASSERT_TRUE(writer->Close().ok());
}

/// Reads every row; returns OK plus the rows, or the first error.
Status ReadAllRows(dfs::FileSystem* fs, const std::string& path,
                   std::vector<Row>* rows) {
  auto reader = OrcReader::Open(fs, path);
  if (!reader.ok()) return reader.status();
  Row row;
  while (true) {
    Result<bool> more = (*reader)->NextRow(&row);
    if (!more.ok()) return more.status();
    if (!*more) return Status::OK();
    rows->push_back(row);
  }
}

bool SameRows(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t c = 0; c < a[i].size(); ++c) {
      if (a[i][c].Compare(b[i][c]) != 0) return false;
    }
  }
  return true;
}

constexpr int kRows = 12000;

TEST(OrcCorruptionTest, SingleByteFlipsAreDetectedOrHarmless) {
  dfs::FileSystem fs;
  WriteFile(&fs, "/orc/victim", kRows);
  std::string pristine = ReadWholeFile(&fs, "/orc/victim");
  ASSERT_GT(pristine.size(), 100u);

  std::vector<Row> golden;
  ASSERT_TRUE(ReadAllRows(&fs, "/orc/victim", &golden).ok());
  ASSERT_EQ(golden.size(), static_cast<size_t>(kRows));

  // Sampled offsets across the whole file, plus the tail region (footer,
  // postscript) which a uniform sample would rarely hit.
  Random rng(20260806);
  std::vector<uint64_t> offsets;
  for (int i = 0; i < 48; ++i) offsets.push_back(rng.Uniform(pristine.size()));
  for (int i = 0; i < 16; ++i) {
    offsets.push_back(pristine.size() - 1 - rng.Uniform(200));
  }

  int detected = 0;
  int harmless = 0;
  for (uint64_t offset : offsets) {
    std::string corrupt = pristine;
    corrupt[offset] ^= 0x40;
    if (corrupt == pristine) continue;  // Paranoia; XOR 0x40 always changes.
    OverwriteFile(&fs, "/orc/victim", corrupt);

    std::vector<Row> rows;
    Status s = ReadAllRows(&fs, "/orc/victim", &rows);
    if (s.ok()) {
      // The flip must have been invisible to the decoder; the rows must
      // still be exactly right (e.g. the flip hit stripe padding).
      EXPECT_TRUE(SameRows(rows, golden))
          << "offset " << offset << ": read OK but rows differ";
      ++harmless;
    } else {
      EXPECT_TRUE(s.IsCorruption() || s.IsIoError())
          << "offset " << offset << ": untyped error " << s.ToString();
      ++detected;
    }
  }
  OverwriteFile(&fs, "/orc/victim", pristine);

  // Most flips land in live bytes of a dense file: detection must dominate.
  EXPECT_GT(detected, harmless)
      << detected << " detected vs " << harmless << " harmless";
  EXPECT_GT(detected, 30);
}

TEST(OrcCorruptionTest, ChecksumMismatchMessageNamesTheSection) {
  dfs::FileSystem fs;
  WriteFile(&fs, "/orc/tail", kRows);
  std::string pristine = ReadWholeFile(&fs, "/orc/tail");

  // Damage the footer: its length is recorded in the postscript, whose own
  // bytes sit at the very end — corrupting ~150 bytes before the end lands
  // in footer/metadata territory for this file size.
  std::string corrupt = pristine;
  corrupt[corrupt.size() - 30] ^= 0x01;
  OverwriteFile(&fs, "/orc/tail", corrupt);
  auto reader = OrcReader::Open(&fs, "/orc/tail");
  ASSERT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsCorruption()) << reader.status().ToString();
}

TEST(OrcCorruptionTest, UntouchedStripesRemainReadable) {
  dfs::FileSystem fs;
  WriteFile(&fs, "/orc/partial", kRows);
  std::string pristine = ReadWholeFile(&fs, "/orc/partial");

  auto clean_reader = std::move(OrcReader::Open(&fs, "/orc/partial"))
                          .ValueOrDie();
  const FileTail& tail = clean_reader->tail();
  ASSERT_GE(tail.stripes.size(), 2u) << "need a multi-stripe file";
  const StripeInformation& s0 = tail.stripes[0];
  const StripeInformation& s1 = tail.stripes[1];
  ASSERT_GT(s0.num_rows, 0u);
  ASSERT_GT(s1.num_rows, 0u);

  // Flip a byte in the middle of stripe 2's data section.
  std::string corrupt = pristine;
  uint64_t victim = s1.offset + s1.index_length + s1.data_length / 2;
  corrupt[victim] ^= 0x40;
  OverwriteFile(&fs, "/orc/partial", corrupt);

  auto reader = std::move(OrcReader::Open(&fs, "/orc/partial")).ValueOrDie();
  Row row;
  // All of stripe 1 must read back exactly.
  for (uint64_t i = 0; i < s0.num_rows; ++i) {
    Result<bool> more = reader->NextRow(&row);
    ASSERT_TRUE(more.ok())
        << "stripe 1 row " << i << ": " << more.status().ToString();
    ASSERT_TRUE(*more);
    EXPECT_EQ(row[0].AsInt(), static_cast<int64_t>(i));
  }
  // Stripe 2 must fail typed — and never hand back wrong rows.
  bool failed = false;
  for (uint64_t i = 0; i < s1.num_rows; ++i) {
    Result<bool> more = reader->NextRow(&row);
    if (!more.ok()) {
      EXPECT_TRUE(more.status().IsCorruption() || more.status().IsIoError())
          << more.status().ToString();
      failed = true;
      break;
    }
    ASSERT_TRUE(*more);
    EXPECT_EQ(row[0].AsInt(), static_cast<int64_t>(s0.num_rows + i))
        << "corrupted stripe produced a wrong row before failing";
  }
  EXPECT_TRUE(failed) << "stripe 2 data flip was never detected";
}

TEST(OrcCorruptionTest, VerificationCanBeDisabled) {
  // verify_checksums=false restores the old reader behaviour (needed to
  // measure the checksum cost, and as an escape hatch for salvage reads).
  dfs::FileSystem fs;
  WriteFile(&fs, "/orc/noverify", 4000);
  auto reader = OrcReader::Open(&fs, "/orc/noverify");
  ASSERT_TRUE(reader.ok());
  OrcReadOptions options;
  options.verify_checksums = false;
  auto lax = OrcReader::Open(&fs, "/orc/noverify", options);
  ASSERT_TRUE(lax.ok());
  Row row;
  uint64_t n = 0;
  while (true) {
    Result<bool> more = (*lax)->NextRow(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ++n;
  }
  EXPECT_EQ(n, 4000u);
}

}  // namespace
}  // namespace minihive::orc
