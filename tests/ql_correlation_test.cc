#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

/// Reproduces the running example of the paper's §5 (Figure 4): two small
/// dimension tables, three big tables, a grouped subquery, and a chain of
/// joins all keyed on the same column.
class CorrelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<dfs::FileSystem>();
    catalog_ = std::make_unique<Catalog>(fs_.get());
    Random rng(7);

    auto big_schema = *TypeDescription::Parse(
        "struct<key:bigint,skey1:bigint,skey2:bigint,"
        "value1:double,value2:double>");
    auto make_big = [&](const std::string& name, int rows, uint64_t seed) {
      Random local(seed);
      std::vector<Row> data;
      for (int i = 0; i < rows; ++i) {
        data.push_back({Value::Int(local.Range(0, 199)),
                        Value::Int(local.Range(0, 9)),
                        Value::Int(local.Range(0, 9)),
                        Value::Double(local.Range(0, 1000) * 0.5),
                        Value::Double(local.Range(0, 100) * 0.25)});
      }
      ASSERT_TRUE(datagen::CreateAndLoad(catalog_.get(), name, big_schema,
                                         formats::FormatKind::kTextFile,
                                         codec::CompressionKind::kNone, data,
                                         2)
                      .ok());
    };
    make_big("big1", 3000, 1);
    make_big("big2", 3000, 2);
    make_big("big3", 3000, 3);

    auto small_schema =
        *TypeDescription::Parse("struct<key:bigint,value1:string>");
    for (const std::string name : {"small1", "small2"}) {
      std::vector<Row> data;
      for (int i = 0; i < 10; ++i) {
        data.push_back(
            {Value::Int(i), Value::String(name + "-" + std::to_string(i))});
      }
      ASSERT_TRUE(datagen::CreateAndLoad(catalog_.get(), name, small_schema,
                                         formats::FormatKind::kTextFile,
                                         codec::CompressionKind::kNone, data)
                      .ok());
    }
  }

  static std::vector<std::string> Canonical(const QueryResult& result) {
    std::vector<std::string> rows;
    for (const Row& row : result.rows) {
      std::string s;
      for (const Value& v : row) s += v.ToString() + "|";
      rows.push_back(s);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  QueryResult MustExecute(const std::string& sql, DriverOptions options) {
    Driver driver(fs_.get(), catalog_.get(), options);
    auto result = driver.Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return QueryResult();
    return std::move(result).ValueOrDie();
  }

  // The paper's Figure 4(a) query (with qualified subquery columns).
  const std::string kRunningExample =
      "SELECT big1.key, small1.value1, small2.value1, big2.value1, sq1.total "
      "FROM big1 "
      "JOIN small1 ON (big1.skey1 = small1.key) "
      "JOIN small2 ON (big1.skey2 = small2.key) "
      "JOIN (SELECT big2.key AS key, AVG(big3.value1) AS avg, "
      "             SUM(big3.value2) AS total "
      "      FROM big2 JOIN big3 ON (big2.key = big3.key) "
      "      GROUP BY big2.key) sq1 ON (big1.key = sq1.key) "
      "JOIN big2 ON (sq1.key = big2.key) "
      "WHERE big2.value1 > sq1.avg";

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(CorrelationTest, GroupByAfterJoinMergesIntoOneJob) {
  // A simple job-flow correlation: join on key, then aggregate on the same
  // key. Without CO: 2 MR jobs; with CO: 1.
  const std::string sql =
      "SELECT big1.key, COUNT(*) AS cnt, SUM(big2.value1) AS total "
      "FROM big1 JOIN big2 ON big1.key = big2.key GROUP BY big1.key";
  DriverOptions off;
  off.mapjoin_conversion = false;
  off.correlation_optimizer = false;
  QueryResult baseline = MustExecute(sql, off);

  DriverOptions on = off;
  on.correlation_optimizer = true;
  QueryResult optimized = MustExecute(sql, on);

  EXPECT_EQ(Canonical(baseline), Canonical(optimized));
  EXPECT_LT(optimized.num_jobs, baseline.num_jobs);
  EXPECT_EQ(optimized.num_jobs, 1);
}

TEST_F(CorrelationTest, InputCorrelationDedupesSharedTable) {
  // big2 joined with an aggregate of itself: same table, same key — the
  // optimizer should scan big2 once (Fig. 5's shared RSOp-4).
  const std::string sql =
      "SELECT big2.key, big2.value1, agg.total "
      "FROM big2 JOIN (SELECT big2.key AS key, SUM(big2.value1) AS total "
      "                FROM big2 GROUP BY big2.key) agg "
      "ON big2.key = agg.key";
  DriverOptions off;
  off.mapjoin_conversion = false;
  off.correlation_optimizer = false;
  QueryResult baseline = MustExecute(sql, off);

  DriverOptions on = off;
  on.correlation_optimizer = true;
  QueryResult optimized = MustExecute(sql, on);

  EXPECT_EQ(Canonical(baseline), Canonical(optimized));
  EXPECT_EQ(optimized.num_jobs, 1);
  EXPECT_GT(baseline.num_jobs, 1);
}

TEST_F(CorrelationTest, RunningExampleAllOptimizerCombinations) {
  // Figure 4's query must produce identical results under every optimizer
  // combination, with strictly fewer jobs as optimizations turn on.
  DriverOptions plain;
  plain.mapjoin_conversion = false;
  plain.merge_maponly_jobs = false;
  plain.correlation_optimizer = false;
  QueryResult base = MustExecute(kRunningExample, plain);
  ASSERT_FALSE(base.rows.empty());

  DriverOptions with_mapjoin = plain;
  with_mapjoin.mapjoin_conversion = true;
  QueryResult mapjoin_result = MustExecute(kRunningExample, with_mapjoin);

  DriverOptions with_merge = with_mapjoin;
  with_merge.merge_maponly_jobs = true;
  QueryResult merge_result = MustExecute(kRunningExample, with_merge);

  DriverOptions with_co = with_merge;
  with_co.correlation_optimizer = true;
  QueryResult co_result = MustExecute(kRunningExample, with_co);

  EXPECT_EQ(Canonical(base), Canonical(mapjoin_result));
  EXPECT_EQ(Canonical(base), Canonical(merge_result));
  EXPECT_EQ(Canonical(base), Canonical(co_result));

  // Job-count staircase (paper: Figure 5 reaches one MapReduce job for the
  // shuffle work; map joins hide in the map phase).
  EXPECT_GT(mapjoin_result.num_map_only_jobs, 0);
  EXPECT_LT(merge_result.num_jobs, mapjoin_result.num_jobs);
  EXPECT_LT(co_result.num_jobs, merge_result.num_jobs);
  EXPECT_EQ(co_result.num_jobs, 1) << co_result.plan_text;
}

TEST_F(CorrelationTest, CorrelationDisabledForOrderBy) {
  // ORDER BY's single-reducer shuffle must not be folded into a
  // correlation; results stay sorted.
  const std::string sql =
      "SELECT big1.key AS k, COUNT(*) AS cnt FROM big1 "
      "JOIN big2 ON big1.key = big2.key GROUP BY big1.key ORDER BY k";
  DriverOptions on;
  on.mapjoin_conversion = false;
  on.correlation_optimizer = true;
  QueryResult result = MustExecute(sql, on);
  ASSERT_FALSE(result.rows.empty());
  for (size_t i = 1; i < result.rows.size(); ++i) {
    EXPECT_LE(result.rows[i - 1][0].AsInt(), result.rows[i][0].AsInt());
  }
}

}  // namespace
}  // namespace minihive::ql
