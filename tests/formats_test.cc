#include "formats/format.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "formats/rcfile.h"

namespace minihive::formats {
namespace {

TypePtr Schema() {
  return *TypeDescription::Parse(
      "struct<id:bigint,name:string,score:double>");
}

Row MakeRow(int64_t id, Random* rng) {
  return {Value::Int(id), Value::String("name-" + std::to_string(id % 100)),
          Value::Double(rng->NextDouble() * 100)};
}

struct FormatCase {
  FormatKind kind;
  codec::CompressionKind compression;
};

class FormatRoundTrip : public ::testing::TestWithParam<FormatCase> {};

TEST_P(FormatRoundTrip, WriteReadAllRows) {
  dfs::FileSystem fs;
  const FileFormat* format = GetFileFormat(GetParam().kind);
  TypePtr schema = Schema();
  WriterOptions wopts;
  wopts.compression = GetParam().compression;
  auto writer =
      std::move(format->CreateWriter(&fs, "/t/f0", schema, wopts)).ValueOrDie();
  Random rng(1);
  const int kRows = 5000;
  std::vector<Row> rows;
  for (int i = 0; i < kRows; ++i) {
    rows.push_back(MakeRow(i, &rng));
    ASSERT_TRUE(writer->AddRow(rows.back()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  auto reader =
      std::move(format->OpenReader(&fs, "/t/f0", schema, ReadOptions()))
          .ValueOrDie();
  Row row;
  for (int i = 0; i < kRows; ++i) {
    auto next = reader->Next(&row);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(*next) << "premature EOF at row " << i;
    EXPECT_EQ(row[0].AsInt(), rows[i][0].AsInt());
    EXPECT_EQ(row[1].AsString(), rows[i][1].AsString());
    EXPECT_DOUBLE_EQ(row[2].AsDouble(), rows[i][2].AsDouble());
  }
  EXPECT_FALSE(*reader->Next(&row));
}

TEST_P(FormatRoundTrip, SplitsCoverFileExactlyOnce) {
  dfs::FileSystem fs;
  const FileFormat* format = GetFileFormat(GetParam().kind);
  TypePtr schema = Schema();
  WriterOptions wopts;
  wopts.compression = GetParam().compression;
  auto writer =
      std::move(format->CreateWriter(&fs, "/t/split", schema, wopts))
          .ValueOrDie();
  Random rng(2);
  const int kRows = 20000;
  int64_t id_sum = 0;
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE(writer->AddRow(MakeRow(i, &rng)).ok());
    id_sum += i;
  }
  ASSERT_TRUE(writer->Close().ok());

  uint64_t file_size = *fs.FileSize("/t/split");
  // Chop the file into 7 arbitrary byte ranges; every row must be seen
  // exactly once across the splits.
  const int kSplits = 7;
  uint64_t chunk = file_size / kSplits + 1;
  int total_rows = 0;
  int64_t total_id_sum = 0;
  for (int s = 0; s < kSplits; ++s) {
    ReadOptions ropts;
    ropts.split_offset = s * chunk;
    ropts.split_length = chunk;
    if (ropts.split_offset >= file_size) break;
    auto reader =
        std::move(format->OpenReader(&fs, "/t/split", schema, ropts))
            .ValueOrDie();
    Row row;
    while (true) {
      auto next = reader->Next(&row);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!*next) break;
      ++total_rows;
      total_id_sum += row[0].AsInt();
    }
  }
  EXPECT_EQ(total_rows, kRows);
  EXPECT_EQ(total_id_sum, id_sum);
}

TEST_P(FormatRoundTrip, ProjectionReturnsOnlyRequestedColumns) {
  dfs::FileSystem fs;
  const FileFormat* format = GetFileFormat(GetParam().kind);
  TypePtr schema = Schema();
  WriterOptions wopts;
  wopts.compression = GetParam().compression;
  auto writer =
      std::move(format->CreateWriter(&fs, "/t/proj", schema, wopts))
          .ValueOrDie();
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer->AddRow(MakeRow(i, &rng)).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  ReadOptions ropts;
  ropts.projected_columns = {0};
  auto reader =
      std::move(format->OpenReader(&fs, "/t/proj", schema, ropts)).ValueOrDie();
  Row row;
  ASSERT_TRUE(*reader->Next(&row));
  EXPECT_EQ(row[0].AsInt(), 0);
  EXPECT_TRUE(row[1].is_null());
  EXPECT_TRUE(row[2].is_null());
}

std::string CaseName(
    const ::testing::TestParamInfo<FormatCase>& info) {
  std::string name = FormatKindName(info.param.kind);
  name += "_";
  name += codec::CompressionKindName(info.param.compression);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatRoundTrip,
    ::testing::Values(
        FormatCase{FormatKind::kTextFile, codec::CompressionKind::kNone},
        FormatCase{FormatKind::kSequenceFile, codec::CompressionKind::kNone},
        FormatCase{FormatKind::kRcFile, codec::CompressionKind::kNone},
        FormatCase{FormatKind::kRcFile, codec::CompressionKind::kFastLz},
        FormatCase{FormatKind::kOrcFile, codec::CompressionKind::kNone},
        FormatCase{FormatKind::kOrcFile, codec::CompressionKind::kFastLz}),
    CaseName);

TEST(RcFileTest, ColumnProjectionReadsFewerBytes) {
  dfs::FileSystem fs;
  const FileFormat* format = GetFileFormat(FormatKind::kRcFile);
  TypePtr schema = Schema();
  auto writer =
      std::move(format->CreateWriter(&fs, "/t/io", schema, WriterOptions()))
          .ValueOrDie();
  Random rng(4);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(writer->AddRow(MakeRow(i, &rng)).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  auto scan = [&](std::vector<int> projection) {
    fs.stats().Reset();
    ReadOptions ropts;
    ropts.projected_columns = std::move(projection);
    auto reader =
        std::move(format->OpenReader(&fs, "/t/io", schema, ropts)).ValueOrDie();
    Row row;
    while (*reader->Next(&row)) {
    }
    return fs.stats().bytes_read.load();
  };
  uint64_t all_bytes = scan({});
  uint64_t one_col_bytes = scan({0});
  EXPECT_LT(one_col_bytes, all_bytes / 2)
      << "columnar projection should cut I/O substantially";
}

TEST(RcFileTest, ComplexTypesStoredWhole) {
  // RCFile does not decompose complex types: it must still round-trip them
  // (as opaque text), which is the inefficiency the paper calls out.
  dfs::FileSystem fs;
  const FileFormat* format = GetFileFormat(FormatKind::kRcFile);
  TypePtr schema = *TypeDescription::Parse(
      "struct<id:int,m:map<string,int>>");
  auto writer =
      std::move(format->CreateWriter(&fs, "/t/cx", schema, WriterOptions()))
          .ValueOrDie();
  Row row = {Value::Int(1),
             Value::MakeMap({{Value::String("a"), Value::Int(1)},
                             {Value::String("b"), Value::Int(2)}})};
  ASSERT_TRUE(writer->AddRow(row).ok());
  ASSERT_TRUE(writer->Close().ok());
  auto reader =
      std::move(format->OpenReader(&fs, "/t/cx", schema, ReadOptions()))
          .ValueOrDie();
  Row out;
  ASSERT_TRUE(*reader->Next(&out));
  EXPECT_EQ(out[1].Compare(row[1]), 0);
}

}  // namespace
}  // namespace minihive::formats
