#include "orc/sarg.h"

#include <gtest/gtest.h>

#include "vec/simd.h"

namespace minihive::orc {
namespace {

ColumnStatistics IntStats(int64_t lo, int64_t hi, bool has_null = false) {
  ColumnStatistics stats;
  stats.UpdateInt(lo);
  stats.UpdateInt(hi);
  if (has_null) stats.MarkNull();
  return stats;
}

ColumnStatistics StringStats(const std::string& lo, const std::string& hi) {
  ColumnStatistics stats;
  stats.UpdateString(lo);
  stats.UpdateString(hi);
  return stats;
}

TEST(SargLeafTest, IntComparisons) {
  ColumnStatistics stats = IntStats(10, 20);
  auto eval = [&](PredicateOp op, int64_t lit) {
    return SearchArgument::EvaluateLeaf({0, op, Value::Int(lit), {}, {}},
                                        stats);
  };
  EXPECT_EQ(eval(PredicateOp::kEquals, 15), TruthValue::kMaybe);
  EXPECT_EQ(eval(PredicateOp::kEquals, 25), TruthValue::kNo);
  EXPECT_EQ(eval(PredicateOp::kEquals, 5), TruthValue::kNo);
  EXPECT_EQ(eval(PredicateOp::kLessThan, 10), TruthValue::kNo);
  EXPECT_EQ(eval(PredicateOp::kLessThan, 11), TruthValue::kMaybe);
  EXPECT_EQ(eval(PredicateOp::kLessThanEquals, 10), TruthValue::kMaybe);
  EXPECT_EQ(eval(PredicateOp::kLessThanEquals, 9), TruthValue::kNo);
  EXPECT_EQ(eval(PredicateOp::kGreaterThan, 20), TruthValue::kNo);
  EXPECT_EQ(eval(PredicateOp::kGreaterThan, 19), TruthValue::kMaybe);
  EXPECT_EQ(eval(PredicateOp::kGreaterThanEquals, 21), TruthValue::kNo);
}

TEST(SargLeafTest, Between) {
  ColumnStatistics stats = IntStats(100, 200);
  auto between = [&](int64_t lo, int64_t hi) {
    return SearchArgument::EvaluateLeaf(
        {0, PredicateOp::kBetween, Value::Int(lo), Value::Int(hi), {}}, stats);
  };
  EXPECT_EQ(between(150, 160), TruthValue::kMaybe);
  EXPECT_EQ(between(0, 99), TruthValue::kNo);
  EXPECT_EQ(between(201, 300), TruthValue::kNo);
  EXPECT_EQ(between(0, 100), TruthValue::kMaybe);  // Touches the min.
  EXPECT_EQ(between(200, 300), TruthValue::kMaybe);  // Touches the max.
}

TEST(SargLeafTest, InList) {
  ColumnStatistics stats = IntStats(10, 20);
  LeafPredicate leaf;
  leaf.column = 0;
  leaf.op = PredicateOp::kIn;
  leaf.in_list = {Value::Int(1), Value::Int(5)};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(leaf, stats), TruthValue::kNo);
  leaf.in_list.push_back(Value::Int(15));
  EXPECT_EQ(SearchArgument::EvaluateLeaf(leaf, stats), TruthValue::kMaybe);
}

TEST(SargLeafTest, NullHandling) {
  ColumnStatistics all_null;
  all_null.MarkNull();
  // Comparisons never match an all-NULL unit.
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kEquals, Value::Int(1), {}, {}}, all_null),
            TruthValue::kNo);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kIsNull, {}, {}, {}}, all_null),
            TruthValue::kMaybe);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kIsNotNull, {}, {}, {}}, all_null),
            TruthValue::kNo);

  ColumnStatistics no_nulls = IntStats(1, 2);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kIsNull, {}, {}, {}}, no_nulls),
            TruthValue::kNo);
}

TEST(SargLeafTest, AllNullGroupSkipsInAndBetween) {
  // Regression: a group whose statistics are all-NULL (num_values == 0) must
  // be skippable by every value predicate, kIn and kBetween included — the
  // null literal probe used to bounce kIn to kMaybe before the value loop.
  ColumnStatistics all_null;
  all_null.MarkNull();
  LeafPredicate in_leaf;
  in_leaf.column = 0;
  in_leaf.op = PredicateOp::kIn;
  in_leaf.in_list = {Value::Int(1), Value::Int(2)};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(in_leaf, all_null), TruthValue::kNo);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kBetween, Value::Int(1), Value::Int(5), {}},
                all_null),
            TruthValue::kNo);

  // Statistics that carry nulls alongside real values can still match.
  ColumnStatistics with_nulls = IntStats(0, 10, /*has_null=*/true);
  in_leaf.in_list = {Value::Int(5)};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(in_leaf, with_nulls),
            TruthValue::kMaybe);
  in_leaf.in_list = {Value::Int(42)};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(in_leaf, with_nulls),
            TruthValue::kNo);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kBetween, Value::Int(3), Value::Int(4), {}},
                with_nulls),
            TruthValue::kMaybe);
}

TEST(SargLeafTest, DegenerateInAndBetweenAreNo) {
  ColumnStatistics stats = IntStats(10, 20);
  LeafPredicate empty_in;
  empty_in.column = 0;
  empty_in.op = PredicateOp::kIn;  // IN () matches nothing.
  EXPECT_EQ(SearchArgument::EvaluateLeaf(empty_in, stats), TruthValue::kNo);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(empty_in,
                                         IntStats(10, 20, /*has_null=*/true)),
            TruthValue::kNo);
  // BETWEEN with inverted bounds is an empty range.
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kBetween, Value::Int(20), Value::Int(10), {}},
                stats),
            TruthValue::kNo);
}

TEST(SargLeafTest, StringRange) {
  ColumnStatistics stats = StringStats("mango", "peach");
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kEquals, Value::String("orange"), {}, {}},
                stats),
            TruthValue::kMaybe);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kEquals, Value::String("apple"), {}, {}},
                stats),
            TruthValue::kNo);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kGreaterThan, Value::String("zebra"), {}, {}},
                stats),
            TruthValue::kNo);
}

TEST(SargLeafTest, TypeMismatchIsMaybe) {
  // Statistics of the wrong family cannot prune (stay safe).
  ColumnStatistics stats = StringStats("a", "z");
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kEquals, Value::Int(3), {}, {}}, stats),
            TruthValue::kMaybe);
}

TEST(SearchArgumentTest, ConjunctionSkipsOnAnyNo) {
  SearchArgument sarg;
  sarg.AddLeaf({0, PredicateOp::kGreaterThan, Value::Int(100), {}, {}});
  sarg.AddLeaf({1, PredicateOp::kEquals, Value::String("x"), {}, {}});
  std::vector<ColumnStatistics> stats = {IntStats(0, 50),
                                         StringStats("a", "z")};
  EXPECT_TRUE(sarg.CanSkip(stats));  // Leaf 0 is definitely false.
  stats[0] = IntStats(0, 500);
  EXPECT_FALSE(sarg.CanSkip(stats));  // Both maybes.
}

TEST(SearchArgumentTest, OutOfRangeColumnIgnored) {
  SearchArgument sarg;
  sarg.AddLeaf({5, PredicateOp::kEquals, Value::Int(1), {}, {}});
  std::vector<ColumnStatistics> stats = {IntStats(0, 1)};
  EXPECT_FALSE(sarg.CanSkip(stats));
}

// ------------------------------------------------------------------
// Row-level (phase-1 late materialization) evaluation.

std::vector<uint8_t> RowMask(const LeafPredicate& leaf, TypeKind kind,
                             const ColumnSlice& slice) {
  std::vector<uint8_t> mask(slice.rows, 1);
  std::vector<uint8_t> scratch;
  SearchArgument::EvaluateLeafRows(leaf, kind, slice, mask.data(), &scratch);
  return mask;
}

TEST(SargRowTest, IntComparisonsMatchScalarTruthOnBothDispatchArms) {
  std::vector<int64_t> vals;
  for (int i = 0; i < 100; ++i) vals.push_back((i * 37) % 100);
  ColumnSlice slice;
  slice.longs = vals.data();
  slice.rows = 100;
  LeafPredicate leaf = {0, PredicateOp::kLessThan, Value::Int(50), {}, {}};
  ASSERT_TRUE(SearchArgument::LeafRowEvaluable(leaf, TypeKind::kBigInt));
  for (bool enabled : {false, true}) {
    simd::SetEnabled(enabled);
    std::vector<uint8_t> mask = RowMask(leaf, TypeKind::kBigInt, slice);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(mask[i] != 0, vals[i] < 50) << "row " << i;
    }
  }
  simd::SetEnabled(true);
}

TEST(SargRowTest, NullRowsRejectedByComparisonsKeptByIsNull) {
  // Packed layout: present says which rows are non-null; values hold only
  // the non-null rows in order.
  std::vector<uint8_t> present = {1, 0, 1, 0, 1, 1};
  std::vector<int64_t> vals = {10, 20, 30, 40};
  ColumnSlice slice;
  slice.present = present.data();
  slice.longs = vals.data();
  slice.rows = 6;

  LeafPredicate lt = {0, PredicateOp::kLessThan, Value::Int(25), {}, {}};
  std::vector<uint8_t> mask = RowMask(lt, TypeKind::kBigInt, slice);
  std::vector<uint8_t> expected = {1, 0, 1, 0, 0, 0};
  EXPECT_EQ(mask, expected);

  std::vector<uint8_t> is_null =
      RowMask({0, PredicateOp::kIsNull, {}, {}, {}}, TypeKind::kBigInt, slice);
  expected = {0, 1, 0, 1, 0, 0};
  EXPECT_EQ(is_null, expected);

  std::vector<uint8_t> not_null = RowMask(
      {0, PredicateOp::kIsNotNull, {}, {}, {}}, TypeKind::kBigInt, slice);
  expected = {1, 0, 1, 0, 1, 1};
  EXPECT_EQ(not_null, expected);
}

TEST(SargRowTest, MaskIsAndedNotOverwritten) {
  std::vector<int64_t> vals = {1, 2, 3, 4};
  ColumnSlice slice;
  slice.longs = vals.data();
  slice.rows = 4;
  std::vector<uint8_t> mask = {0, 1, 0, 1};  // Rows 0 and 2 already dead.
  std::vector<uint8_t> scratch;
  SearchArgument::EvaluateLeafRows(
      {0, PredicateOp::kGreaterThanEquals, Value::Int(0), {}, {}},
      TypeKind::kBigInt, slice, mask.data(), &scratch);
  std::vector<uint8_t> expected = {0, 1, 0, 1};
  EXPECT_EQ(mask, expected);
}

TEST(SargRowTest, DoubleBetweenAndStringEquality) {
  std::vector<double> doubles = {0.5, 1.5, 2.5, 3.5};
  ColumnSlice dslice;
  dslice.doubles = doubles.data();
  dslice.rows = 4;
  LeafPredicate between = {0, PredicateOp::kBetween, Value::Double(1.0),
                           Value::Double(3.0), {}};
  ASSERT_TRUE(SearchArgument::LeafRowEvaluable(between, TypeKind::kDouble));
  std::vector<uint8_t> mask = RowMask(between, TypeKind::kDouble, dslice);
  std::vector<uint8_t> expected = {0, 1, 1, 0};
  EXPECT_EQ(mask, expected);

  std::vector<std::string_view> strs = {"apple", "banana", "cherry"};
  ColumnSlice sslice;
  sslice.strings = strs.data();
  sslice.rows = 3;
  LeafPredicate eq = {0, PredicateOp::kEquals, Value::String("banana"), {},
                      {}};
  ASSERT_TRUE(SearchArgument::LeafRowEvaluable(eq, TypeKind::kString));
  mask = RowMask(eq, TypeKind::kString, sslice);
  expected = {0, 1, 0};
  EXPECT_EQ(mask, expected);

  LeafPredicate in;
  in.column = 0;
  in.op = PredicateOp::kIn;
  in.in_list = {Value::String("apple"), Value::String("cherry")};
  ASSERT_TRUE(SearchArgument::LeafRowEvaluable(in, TypeKind::kString));
  mask = RowMask(in, TypeKind::kString, sslice);
  expected = {1, 0, 1};
  EXPECT_EQ(mask, expected);
}

TEST(SargRowTest, RowEvaluabilityRequiresExactTypeFamilies) {
  // int col + double literal would change comparison semantics: refuse.
  EXPECT_FALSE(SearchArgument::LeafRowEvaluable(
      {0, PredicateOp::kLessThan, Value::Double(1.5), {}, {}},
      TypeKind::kBigInt));
  // double col + int literal converts like the engine does: allowed.
  EXPECT_TRUE(SearchArgument::LeafRowEvaluable(
      {0, PredicateOp::kLessThan, Value::Int(2), {}, {}}, TypeKind::kDouble));
  // String BETWEEN stays group-level-only.
  EXPECT_FALSE(SearchArgument::LeafRowEvaluable(
      {0, PredicateOp::kBetween, Value::String("a"), Value::String("b"), {}},
      TypeKind::kString));
  // Complex types are never row-evaluable.
  EXPECT_FALSE(SearchArgument::LeafRowEvaluable(
      {0, PredicateOp::kIsNull, {}, {}, {}}, TypeKind::kArray));
}

TEST(ColumnStatisticsTest, SerializationRoundTrip) {
  ColumnStatistics stats;
  stats.UpdateInt(-5);
  stats.UpdateInt(100);
  stats.UpdateString("alpha");
  stats.UpdateString("omega");
  stats.UpdateDouble(2.5);
  stats.MarkNull();
  std::string bytes;
  stats.Serialize(&bytes);
  ByteReader reader(bytes);
  ColumnStatistics restored;
  ASSERT_TRUE(ColumnStatistics::Deserialize(&reader, &restored).ok());
  EXPECT_EQ(restored.num_values(), stats.num_values());
  EXPECT_TRUE(restored.has_null());
  EXPECT_EQ(restored.int_min(), -5);
  EXPECT_EQ(restored.int_max(), 100);
  EXPECT_EQ(restored.string_min(), "alpha");
  EXPECT_EQ(restored.string_max(), "omega");
  EXPECT_DOUBLE_EQ(restored.double_min(), 2.5);
}

TEST(ColumnStatisticsTest, MergeCombinesRangesAndSums) {
  ColumnStatistics a, b;
  a.UpdateInt(1);
  a.UpdateInt(10);
  b.UpdateInt(-3);
  b.UpdateInt(7);
  b.MarkNull();
  a.Merge(b);
  EXPECT_EQ(a.int_min(), -3);
  EXPECT_EQ(a.int_max(), 10);
  EXPECT_EQ(a.int_sum(), 1 + 10 - 3 + 7);
  EXPECT_EQ(a.num_values(), 4u);
  EXPECT_TRUE(a.has_null());
}

}  // namespace
}  // namespace minihive::orc
