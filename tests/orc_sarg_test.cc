#include "orc/sarg.h"

#include <gtest/gtest.h>

namespace minihive::orc {
namespace {

ColumnStatistics IntStats(int64_t lo, int64_t hi, bool has_null = false) {
  ColumnStatistics stats;
  stats.UpdateInt(lo);
  stats.UpdateInt(hi);
  if (has_null) stats.MarkNull();
  return stats;
}

ColumnStatistics StringStats(const std::string& lo, const std::string& hi) {
  ColumnStatistics stats;
  stats.UpdateString(lo);
  stats.UpdateString(hi);
  return stats;
}

TEST(SargLeafTest, IntComparisons) {
  ColumnStatistics stats = IntStats(10, 20);
  auto eval = [&](PredicateOp op, int64_t lit) {
    return SearchArgument::EvaluateLeaf({0, op, Value::Int(lit), {}, {}},
                                        stats);
  };
  EXPECT_EQ(eval(PredicateOp::kEquals, 15), TruthValue::kMaybe);
  EXPECT_EQ(eval(PredicateOp::kEquals, 25), TruthValue::kNo);
  EXPECT_EQ(eval(PredicateOp::kEquals, 5), TruthValue::kNo);
  EXPECT_EQ(eval(PredicateOp::kLessThan, 10), TruthValue::kNo);
  EXPECT_EQ(eval(PredicateOp::kLessThan, 11), TruthValue::kMaybe);
  EXPECT_EQ(eval(PredicateOp::kLessThanEquals, 10), TruthValue::kMaybe);
  EXPECT_EQ(eval(PredicateOp::kLessThanEquals, 9), TruthValue::kNo);
  EXPECT_EQ(eval(PredicateOp::kGreaterThan, 20), TruthValue::kNo);
  EXPECT_EQ(eval(PredicateOp::kGreaterThan, 19), TruthValue::kMaybe);
  EXPECT_EQ(eval(PredicateOp::kGreaterThanEquals, 21), TruthValue::kNo);
}

TEST(SargLeafTest, Between) {
  ColumnStatistics stats = IntStats(100, 200);
  auto between = [&](int64_t lo, int64_t hi) {
    return SearchArgument::EvaluateLeaf(
        {0, PredicateOp::kBetween, Value::Int(lo), Value::Int(hi), {}}, stats);
  };
  EXPECT_EQ(between(150, 160), TruthValue::kMaybe);
  EXPECT_EQ(between(0, 99), TruthValue::kNo);
  EXPECT_EQ(between(201, 300), TruthValue::kNo);
  EXPECT_EQ(between(0, 100), TruthValue::kMaybe);  // Touches the min.
  EXPECT_EQ(between(200, 300), TruthValue::kMaybe);  // Touches the max.
}

TEST(SargLeafTest, InList) {
  ColumnStatistics stats = IntStats(10, 20);
  LeafPredicate leaf;
  leaf.column = 0;
  leaf.op = PredicateOp::kIn;
  leaf.in_list = {Value::Int(1), Value::Int(5)};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(leaf, stats), TruthValue::kNo);
  leaf.in_list.push_back(Value::Int(15));
  EXPECT_EQ(SearchArgument::EvaluateLeaf(leaf, stats), TruthValue::kMaybe);
}

TEST(SargLeafTest, NullHandling) {
  ColumnStatistics all_null;
  all_null.MarkNull();
  // Comparisons never match an all-NULL unit.
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kEquals, Value::Int(1), {}, {}}, all_null),
            TruthValue::kNo);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kIsNull, {}, {}, {}}, all_null),
            TruthValue::kMaybe);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kIsNotNull, {}, {}, {}}, all_null),
            TruthValue::kNo);

  ColumnStatistics no_nulls = IntStats(1, 2);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kIsNull, {}, {}, {}}, no_nulls),
            TruthValue::kNo);
}

TEST(SargLeafTest, StringRange) {
  ColumnStatistics stats = StringStats("mango", "peach");
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kEquals, Value::String("orange"), {}, {}},
                stats),
            TruthValue::kMaybe);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kEquals, Value::String("apple"), {}, {}},
                stats),
            TruthValue::kNo);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kGreaterThan, Value::String("zebra"), {}, {}},
                stats),
            TruthValue::kNo);
}

TEST(SargLeafTest, TypeMismatchIsMaybe) {
  // Statistics of the wrong family cannot prune (stay safe).
  ColumnStatistics stats = StringStats("a", "z");
  EXPECT_EQ(SearchArgument::EvaluateLeaf(
                {0, PredicateOp::kEquals, Value::Int(3), {}, {}}, stats),
            TruthValue::kMaybe);
}

TEST(SearchArgumentTest, ConjunctionSkipsOnAnyNo) {
  SearchArgument sarg;
  sarg.AddLeaf({0, PredicateOp::kGreaterThan, Value::Int(100), {}, {}});
  sarg.AddLeaf({1, PredicateOp::kEquals, Value::String("x"), {}, {}});
  std::vector<ColumnStatistics> stats = {IntStats(0, 50),
                                         StringStats("a", "z")};
  EXPECT_TRUE(sarg.CanSkip(stats));  // Leaf 0 is definitely false.
  stats[0] = IntStats(0, 500);
  EXPECT_FALSE(sarg.CanSkip(stats));  // Both maybes.
}

TEST(SearchArgumentTest, OutOfRangeColumnIgnored) {
  SearchArgument sarg;
  sarg.AddLeaf({5, PredicateOp::kEquals, Value::Int(1), {}, {}});
  std::vector<ColumnStatistics> stats = {IntStats(0, 1)};
  EXPECT_FALSE(sarg.CanSkip(stats));
}

TEST(ColumnStatisticsTest, SerializationRoundTrip) {
  ColumnStatistics stats;
  stats.UpdateInt(-5);
  stats.UpdateInt(100);
  stats.UpdateString("alpha");
  stats.UpdateString("omega");
  stats.UpdateDouble(2.5);
  stats.MarkNull();
  std::string bytes;
  stats.Serialize(&bytes);
  ByteReader reader(bytes);
  ColumnStatistics restored;
  ASSERT_TRUE(ColumnStatistics::Deserialize(&reader, &restored).ok());
  EXPECT_EQ(restored.num_values(), stats.num_values());
  EXPECT_TRUE(restored.has_null());
  EXPECT_EQ(restored.int_min(), -5);
  EXPECT_EQ(restored.int_max(), 100);
  EXPECT_EQ(restored.string_min(), "alpha");
  EXPECT_EQ(restored.string_max(), "omega");
  EXPECT_DOUBLE_EQ(restored.double_min(), 2.5);
}

TEST(ColumnStatisticsTest, MergeCombinesRangesAndSums) {
  ColumnStatistics a, b;
  a.UpdateInt(1);
  a.UpdateInt(10);
  b.UpdateInt(-3);
  b.UpdateInt(7);
  b.MarkNull();
  a.Merge(b);
  EXPECT_EQ(a.int_min(), -3);
  EXPECT_EQ(a.int_max(), 10);
  EXPECT_EQ(a.int_sum(), 1 + 10 - 3 + 7);
  EXPECT_EQ(a.num_values(), 4u);
  EXPECT_TRUE(a.has_null());
}

}  // namespace
}  // namespace minihive::orc
