#include <gtest/gtest.h>

#include "common/random.h"
#include "orc/reader.h"
#include "orc/writer.h"

namespace minihive::orc {
namespace {

TypePtr FlatSchema() {
  return *TypeDescription::Parse(
      "struct<id:bigint,name:string,score:double,flag:boolean,small:tinyint>");
}

Row FlatRow(int64_t i) {
  return {Value::Int(i), Value::String("name-" + std::to_string(i % 50)),
          Value::Double(i * 0.5), Value::Bool(i % 3 == 0),
          Value::Int((i % 256) - 128)};
}

void WriteFlatFile(dfs::FileSystem* fs, const std::string& path, int rows,
                   OrcWriterOptions options = OrcWriterOptions()) {
  auto writer =
      std::move(OrcWriter::Create(fs, path, FlatSchema(), options))
          .ValueOrDie();
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(writer->AddRow(FlatRow(i)).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

TEST(OrcFileTest, FlatRoundTrip) {
  dfs::FileSystem fs;
  WriteFlatFile(&fs, "/orc/flat", 25000);
  auto reader = std::move(OrcReader::Open(&fs, "/orc/flat")).ValueOrDie();
  EXPECT_EQ(reader->tail().num_rows, 25000u);
  Row row;
  for (int i = 0; i < 25000; ++i) {
    auto next = reader->NextRow(&row);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(*next) << "EOF at " << i;
    ASSERT_EQ(row[0].AsInt(), i);
    ASSERT_EQ(row[1].AsString(), "name-" + std::to_string(i % 50));
    ASSERT_DOUBLE_EQ(row[2].AsDouble(), i * 0.5);
    ASSERT_EQ(row[3].AsBool(), i % 3 == 0);
    ASSERT_EQ(row[4].AsInt(), (i % 256) - 128);
  }
  EXPECT_FALSE(*reader->NextRow(&row));
}

TEST(OrcFileTest, NullsRoundTrip) {
  dfs::FileSystem fs;
  auto writer =
      std::move(OrcWriter::Create(&fs, "/orc/nulls", FlatSchema()))
          .ValueOrDie();
  Random rng(5);
  std::vector<Row> rows;
  for (int i = 0; i < 3000; ++i) {
    Row row = FlatRow(i);
    for (auto& v : row) {
      if (rng.Bernoulli(0.3)) v = Value::Null();
    }
    rows.push_back(row);
    ASSERT_TRUE(writer->AddRow(row).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  auto reader = std::move(OrcReader::Open(&fs, "/orc/nulls")).ValueOrDie();
  Row row;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(*reader->NextRow(&row));
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(row[c].Compare(rows[i][c]), 0)
          << "row " << i << " col " << c;
    }
  }
}

TEST(OrcFileTest, ComplexTypesDecomposedAndRoundTrip) {
  // The paper's Figure 3 schema, including map-of-struct.
  dfs::FileSystem fs;
  TypePtr schema = *TypeDescription::Parse(
      "struct<col1:int,col2:array<int>,"
      "col4:map<string,struct<col7:string,col8:int>>,col9:string>");
  auto writer =
      std::move(OrcWriter::Create(&fs, "/orc/nested", schema)).ValueOrDie();
  std::vector<Row> rows;
  Random rng(6);
  for (int i = 0; i < 500; ++i) {
    Value::Array arr;
    for (uint64_t j = 0; j < rng.Uniform(5); ++j) {
      arr.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                       : Value::Int(rng.Range(0, 100)));
    }
    Value::MapEntries map;
    for (uint64_t j = 0; j < rng.Uniform(3); ++j) {
      map.push_back(
          {Value::String(rng.NextString(4)),
           Value::MakeStruct({Value::String(rng.NextString(6)),
                              Value::Int(rng.Range(-10, 10))})});
    }
    Row row = {rng.Bernoulli(0.1) ? Value::Null() : Value::Int(i),
               Value::MakeArray(std::move(arr)),
               Value::MakeMap(std::move(map)), Value::String("r" +
               std::to_string(i))};
    rows.push_back(row);
    ASSERT_TRUE(writer->AddRow(row).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  auto reader = std::move(OrcReader::Open(&fs, "/orc/nested")).ValueOrDie();
  Row row;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(*reader->NextRow(&row)) << i;
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(row[c].Compare(rows[i][c]), 0)
          << "row " << i << " col " << c << ": " << row[c].ToString()
          << " vs " << rows[i][c].ToString();
    }
  }
}

TEST(OrcFileTest, UnionRoundTrip) {
  dfs::FileSystem fs;
  TypePtr schema =
      *TypeDescription::Parse("struct<u:uniontype<int,string>>");
  auto writer =
      std::move(OrcWriter::Create(&fs, "/orc/union", schema)).ValueOrDie();
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    Row row = {i % 3 == 0
                   ? Value::MakeUnion(0, Value::Int(i))
                   : (i % 3 == 1 ? Value::MakeUnion(
                                       1, Value::String(std::to_string(i)))
                                 : Value::Null())};
    rows.push_back(row);
    ASSERT_TRUE(writer->AddRow(row).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  auto reader = std::move(OrcReader::Open(&fs, "/orc/union")).ValueOrDie();
  Row row;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(*reader->NextRow(&row));
    EXPECT_EQ(row[0].Compare(rows[i][0]), 0) << i;
  }
}

TEST(OrcFileTest, MultipleStripes) {
  dfs::FileSystem fs;
  OrcWriterOptions options;
  options.stripe_size = 64 * 1024;  // Force several stripes.
  WriteFlatFile(&fs, "/orc/stripes", 60000, options);
  auto reader = std::move(OrcReader::Open(&fs, "/orc/stripes")).ValueOrDie();
  EXPECT_GT(reader->tail().stripes.size(), 2u);
  Row row;
  int count = 0;
  while (*reader->NextRow(&row)) {
    ASSERT_EQ(row[0].AsInt(), count);
    ++count;
  }
  EXPECT_EQ(count, 60000);
}

TEST(OrcFileTest, FileStatisticsAnswerAggregates) {
  dfs::FileSystem fs;
  WriteFlatFile(&fs, "/orc/stats", 10000);
  auto reader = std::move(OrcReader::Open(&fs, "/orc/stats")).ValueOrDie();
  const FileTail& tail = reader->tail();
  // Column id 1 = "id" (root is 0).
  const ColumnStatistics& id_stats = tail.file_stats[1];
  EXPECT_EQ(id_stats.num_values(), 10000u);
  EXPECT_EQ(id_stats.int_min(), 0);
  EXPECT_EQ(id_stats.int_max(), 9999);
  EXPECT_EQ(id_stats.int_sum(), 10000LL * 9999 / 2);
  const ColumnStatistics& name_stats = tail.file_stats[2];
  EXPECT_TRUE(name_stats.has_string_stats());
  EXPECT_EQ(name_stats.string_min(), "name-0");
  const ColumnStatistics& score_stats = tail.file_stats[3];
  EXPECT_DOUBLE_EQ(score_stats.double_max(), 9999 * 0.5);
}

TEST(OrcFileTest, DictionaryEncodingChosenForLowCardinality) {
  dfs::FileSystem fs;
  // 50 distinct names over 25000 rows -> ratio 0.002 << 0.8: dictionary.
  WriteFlatFile(&fs, "/orc/dict", 25000);
  uint64_t dict_size = *fs.FileSize("/orc/dict");

  // Now a file where every name is unique -> ratio 1.0 > 0.8: direct.
  auto writer = std::move(OrcWriter::Create(&fs, "/orc/direct", FlatSchema()))
                    .ValueOrDie();
  for (int i = 0; i < 25000; ++i) {
    Row row = FlatRow(i);
    row[1] = Value::String("unique-name-" + std::to_string(i));
    ASSERT_TRUE(writer->AddRow(row).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  uint64_t direct_size = *fs.FileSize("/orc/direct");
  EXPECT_LT(dict_size, direct_size);

  // Both still round-trip.
  auto reader = std::move(OrcReader::Open(&fs, "/orc/direct")).ValueOrDie();
  Row row;
  ASSERT_TRUE(*reader->NextRow(&row));
  EXPECT_EQ(row[1].AsString(), "unique-name-0");
}

TEST(OrcFileTest, ProjectionReadsOnlyNeededStreams) {
  dfs::FileSystem fs;
  WriteFlatFile(&fs, "/orc/proj", 50000);
  auto scan = [&](std::vector<int> fields) {
    fs.stats().Reset();
    OrcReadOptions options;
    options.projected_fields = std::move(fields);
    auto reader =
        std::move(OrcReader::Open(&fs, "/orc/proj", options)).ValueOrDie();
    Row row;
    while (*reader->NextRow(&row)) {
    }
    return fs.stats().bytes_read.load();
  };
  uint64_t all = scan({});
  uint64_t just_id = scan({0});
  EXPECT_LT(just_id, all / 2);
}

TEST(OrcFileTest, SargSkipsStripes) {
  dfs::FileSystem fs;
  OrcWriterOptions options;
  options.stripe_size = 64 * 1024;
  WriteFlatFile(&fs, "/orc/skip", 60000, options);

  SearchArgument sarg;
  sarg.AddLeaf({0, PredicateOp::kBetween, Value::Int(100), Value::Int(200),
                {}});
  OrcReadOptions ropts;
  ropts.sarg = &sarg;
  auto reader =
      std::move(OrcReader::Open(&fs, "/orc/skip", ropts)).ValueOrDie();
  EXPECT_GT(reader->stripes_skipped(), 0u);
  Row row;
  int matches = 0;
  while (*reader->NextRow(&row)) {
    // Selected groups may contain non-matching rows; the row-level filter is
    // the execution engine's job. Count true matches only.
    int64_t id = row[0].AsInt();
    if (id >= 100 && id <= 200) ++matches;
  }
  EXPECT_EQ(matches, 101);
}

TEST(OrcFileTest, SargSkipsIndexGroupsAndCutsBytes) {
  dfs::FileSystem fs;
  OrcWriterOptions options;
  options.row_index_stride = 1000;
  WriteFlatFile(&fs, "/orc/groups", 100000, options);

  // Full scan bytes.
  fs.stats().Reset();
  {
    auto reader = std::move(OrcReader::Open(&fs, "/orc/groups")).ValueOrDie();
    Row row;
    while (*reader->NextRow(&row)) {
    }
  }
  uint64_t full_bytes = fs.stats().bytes_read.load();

  // Selective scan: a narrow id range covers 1 of 100 groups.
  SearchArgument sarg;
  sarg.AddLeaf({0, PredicateOp::kBetween, Value::Int(50000), Value::Int(50010),
                {}});
  fs.stats().Reset();
  OrcReadOptions ropts;
  ropts.sarg = &sarg;
  auto reader =
      std::move(OrcReader::Open(&fs, "/orc/groups", ropts)).ValueOrDie();
  Row row;
  int rows = 0;
  while (*reader->NextRow(&row)) ++rows;
  uint64_t selective_bytes = fs.stats().bytes_read.load();
  EXPECT_GT(reader->groups_skipped(), 90u);
  EXPECT_EQ(rows, 1000);  // One index group's worth.
  EXPECT_LT(selective_bytes, full_bytes / 5)
      << "index groups should cut bytes read";
}

TEST(OrcFileTest, SargOnAllMatchingDataAddsOnlyIndexOverhead) {
  dfs::FileSystem fs;
  OrcWriterOptions options;
  options.row_index_stride = 1000;
  WriteFlatFile(&fs, "/orc/hard", 50000, options);

  fs.stats().Reset();
  {
    auto reader = std::move(OrcReader::Open(&fs, "/orc/hard")).ValueOrDie();
    Row row;
    while (*reader->NextRow(&row)) {
    }
  }
  uint64_t no_ppd_bytes = fs.stats().bytes_read.load();

  SearchArgument sarg;  // Matches everything.
  sarg.AddLeaf({0, PredicateOp::kGreaterThanEquals, Value::Int(-1), {}, {}});
  fs.stats().Reset();
  OrcReadOptions ropts;
  ropts.sarg = &sarg;
  auto reader =
      std::move(OrcReader::Open(&fs, "/orc/hard", ropts)).ValueOrDie();
  Row row;
  int rows = 0;
  while (*reader->NextRow(&row)) ++rows;
  uint64_t ppd_bytes = fs.stats().bytes_read.load();
  EXPECT_EQ(rows, 50000);
  EXPECT_GT(ppd_bytes, no_ppd_bytes);  // Index data is extra...
  EXPECT_LT(ppd_bytes, no_ppd_bytes + no_ppd_bytes / 4)  // ...but small.
      << "index overhead should be modest (paper: ~40MB on 17GB)";
}

TEST(OrcFileTest, VectorizedBatchMatchesRowMode) {
  dfs::FileSystem fs;
  WriteFlatFile(&fs, "/orc/vec", 10000);
  OrcReadOptions options;
  options.projected_fields = {0, 2, 1};
  auto row_reader =
      std::move(OrcReader::Open(&fs, "/orc/vec", options)).ValueOrDie();
  auto batch_reader =
      std::move(OrcReader::Open(&fs, "/orc/vec", options)).ValueOrDie();
  auto batch = std::move(batch_reader->CreateBatch()).ValueOrDie();
  Row row;
  int checked = 0;
  while (true) {
    auto more = batch_reader->NextBatch(batch.get());
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    auto* ids = batch->LongCol(0);
    auto* scores = batch->DoubleCol(1);
    auto* names = batch->BytesCol(2);
    for (int i = 0; i < batch->size; ++i) {
      ASSERT_TRUE(*row_reader->NextRow(&row));
      EXPECT_EQ(ids->vector[i], row[0].AsInt());
      EXPECT_DOUBLE_EQ(scores->vector[i], row[2].AsDouble());
      EXPECT_EQ(names->GetView(i), row[1].AsString());
      ++checked;
    }
    EXPECT_TRUE(ids->no_nulls);
  }
  EXPECT_EQ(checked, 10000);
  EXPECT_FALSE(*row_reader->NextRow(&row));
}

TEST(OrcFileTest, VectorizedBatchWithNulls) {
  dfs::FileSystem fs;
  auto writer =
      std::move(OrcWriter::Create(&fs, "/orc/vecnull", FlatSchema()))
          .ValueOrDie();
  for (int i = 0; i < 2000; ++i) {
    Row row = FlatRow(i);
    if (i % 7 == 0) row[0] = Value::Null();
    ASSERT_TRUE(writer->AddRow(row).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  OrcReadOptions options;
  options.projected_fields = {0};
  auto reader =
      std::move(OrcReader::Open(&fs, "/orc/vecnull", options)).ValueOrDie();
  auto batch = std::move(reader->CreateBatch()).ValueOrDie();
  int i = 0;
  while (*reader->NextBatch(batch.get())) {
    auto* ids = batch->LongCol(0);
    EXPECT_FALSE(ids->no_nulls);
    for (int j = 0; j < batch->size; ++j, ++i) {
      if (i % 7 == 0) {
        EXPECT_FALSE(ids->not_null[j]) << i;
      } else {
        ASSERT_TRUE(ids->not_null[j]) << i;
        EXPECT_EQ(ids->vector[j], i);
      }
    }
  }
  EXPECT_EQ(i, 2000);
}

TEST(OrcFileTest, StripeAlignmentKeepsStripesInOneBlock) {
  dfs::FileSystemOptions fs_options;
  fs_options.block_size = 256 * 1024;
  dfs::FileSystem fs(fs_options);
  OrcWriterOptions options;
  options.stripe_size = 150 * 1024;
  options.align_stripes_to_blocks = true;
  WriteFlatFile(&fs, "/orc/aligned", 120000, options);

  auto reader = std::move(OrcReader::Open(&fs, "/orc/aligned")).ValueOrDie();
  ASSERT_GT(reader->tail().stripes.size(), 1u);
  for (const StripeInformation& stripe : reader->tail().stripes) {
    uint64_t stripe_len =
        stripe.index_length + stripe.data_length + stripe.footer_length;
    if (stripe_len > fs_options.block_size) continue;  // Cannot fit anyway.
    uint64_t first_block = stripe.offset / fs_options.block_size;
    uint64_t last_block =
        (stripe.offset + stripe_len - 1) / fs_options.block_size;
    EXPECT_EQ(first_block, last_block)
        << "aligned stripe spans blocks at offset " << stripe.offset;
  }
}

TEST(OrcFileTest, SplitByStripeOffsetsCoversFileOnce) {
  dfs::FileSystem fs;
  OrcWriterOptions options;
  options.stripe_size = 64 * 1024;
  WriteFlatFile(&fs, "/orc/split", 60000, options);
  uint64_t file_size = *fs.FileSize("/orc/split");
  uint64_t half = file_size / 2;
  int total = 0;
  for (auto [off, len] : {std::pair<uint64_t, uint64_t>{0, half},
                          std::pair<uint64_t, uint64_t>{half,
                                                        file_size - half}}) {
    OrcReadOptions ropts;
    ropts.split_offset = off;
    ropts.split_length = len;
    auto reader =
        std::move(OrcReader::Open(&fs, "/orc/split", ropts)).ValueOrDie();
    Row row;
    while (*reader->NextRow(&row)) ++total;
  }
  EXPECT_EQ(total, 60000);
}

TEST(OrcMemoryManagerTest, ScalesConcurrentWriters) {
  MemoryManager manager(1000);
  EXPECT_DOUBLE_EQ(manager.Scale(), 1.0);
  int w1, w2, w3;
  manager.AddWriter(&w1, 600);
  EXPECT_DOUBLE_EQ(manager.Scale(), 1.0);
  manager.AddWriter(&w2, 600);
  EXPECT_NEAR(manager.Scale(), 1000.0 / 1200.0, 1e-9);
  manager.AddWriter(&w3, 800);
  EXPECT_NEAR(manager.Scale(), 1000.0 / 2000.0, 1e-9);
  manager.RemoveWriter(&w2);
  EXPECT_NEAR(manager.Scale(), 1000.0 / 1400.0, 1e-9);
  manager.RemoveWriter(&w1);
  manager.RemoveWriter(&w3);
  EXPECT_DOUBLE_EQ(manager.Scale(), 1.0);
  manager.RemoveWriter(&w3);  // Idempotent.
}

TEST(OrcMemoryManagerTest, ChargesWriterStripesAgainstASessionBudget) {
  MemoryBudget budget("query", 1000);
  MemoryManager manager(10000);
  manager.set_budget(&budget);
  int w1, w2;
  manager.AddWriter(&w1, 600);
  EXPECT_EQ(budget.used(), 600u);
  // The second writer's stripe doesn't fit the budget: the reservation is
  // best-effort, so the writer still registers (Scale() keeps governing it)
  // and the budget is simply not charged.
  manager.AddWriter(&w2, 600);
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_EQ(manager.total_registered(), 1200u);
  // Re-registering with a smaller stripe swaps the charge.
  manager.AddWriter(&w1, 300);
  EXPECT_EQ(budget.used(), 300u);
  manager.RemoveWriter(&w1);
  manager.RemoveWriter(&w2);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(OrcMemoryManagerTest, WritersFlushSmallerStripesUnderPressure) {
  dfs::FileSystem fs;
  MemoryManager manager(256 * 1024);
  OrcWriterOptions options;
  options.stripe_size = 1024 * 1024;
  options.memory_manager = &manager;
  // Two concurrent writers: each effective stripe ~128 KB, so writing
  // ~1 MB of data each should produce multiple stripes per file.
  auto w1 = std::move(OrcWriter::Create(&fs, "/orc/mm1", FlatSchema(),
                                        options))
                .ValueOrDie();
  auto w2 = std::move(OrcWriter::Create(&fs, "/orc/mm2", FlatSchema(),
                                        options))
                .ValueOrDie();
  for (int i = 0; i < 30000; ++i) {
    ASSERT_TRUE(w1->AddRow(FlatRow(i)).ok());
    ASSERT_TRUE(w2->AddRow(FlatRow(i)).ok());
  }
  ASSERT_TRUE(w1->Close().ok());
  ASSERT_TRUE(w2->Close().ok());
  EXPECT_GT(w1->stripes_written(), 1u)
      << "memory manager should have forced early stripe flushes";
}

TEST(OrcFileTest, EmptyFile) {
  dfs::FileSystem fs;
  auto writer =
      std::move(OrcWriter::Create(&fs, "/orc/empty", FlatSchema()))
          .ValueOrDie();
  ASSERT_TRUE(writer->Close().ok());
  auto reader = std::move(OrcReader::Open(&fs, "/orc/empty")).ValueOrDie();
  EXPECT_EQ(reader->tail().num_rows, 0u);
  Row row;
  EXPECT_FALSE(*reader->NextRow(&row));
}

TEST(OrcFileTest, CompressionShrinksFile) {
  dfs::FileSystem fs;
  WriteFlatFile(&fs, "/orc/raw", 30000);
  OrcWriterOptions options;
  options.compression = codec::CompressionKind::kFastLz;
  WriteFlatFile(&fs, "/orc/snappy", 30000, options);
  EXPECT_LT(*fs.FileSize("/orc/snappy"), *fs.FileSize("/orc/raw"));
  // And still readable.
  auto reader = std::move(OrcReader::Open(&fs, "/orc/snappy")).ValueOrDie();
  Row row;
  int count = 0;
  while (*reader->NextRow(&row)) ++count;
  EXPECT_EQ(count, 30000);
}

}  // namespace
}  // namespace minihive::orc
