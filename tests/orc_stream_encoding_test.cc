#include "orc/stream_encoding.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace minihive::orc {
namespace {

// ---------------------------------------------------------------- RLE byte

std::vector<uint8_t> RoundTripBytes(const std::vector<uint8_t>& values) {
  RunLengthByteEncoder encoder;
  for (uint8_t v : values) encoder.Add(v);
  std::string encoded;
  encoder.Finish(&encoded);
  RunLengthByteDecoder decoder(encoded);
  std::vector<uint8_t> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(decoder.Next(&out[i]).ok());
  }
  EXPECT_TRUE(decoder.AtEnd());
  return out;
}

TEST(RunLengthByteTest, Empty) {
  RunLengthByteEncoder encoder;
  std::string encoded;
  encoder.Finish(&encoded);
  EXPECT_TRUE(encoded.empty());
}

TEST(RunLengthByteTest, SingleValue) {
  std::vector<uint8_t> v = {42};
  EXPECT_EQ(RoundTripBytes(v), v);
}

TEST(RunLengthByteTest, LongRunCompresses) {
  std::vector<uint8_t> v(10000, 7);
  RunLengthByteEncoder encoder;
  for (uint8_t b : v) encoder.Add(b);
  std::string encoded;
  encoder.Finish(&encoded);
  EXPECT_LT(encoded.size(), 200u);
  EXPECT_EQ(RoundTripBytes(v), v);
}

TEST(RunLengthByteTest, LiteralsBeforeRunKeepOrder) {
  // Regression: literals pending when a run flushes must be emitted first.
  std::vector<uint8_t> v = {1, 2, 3, 9, 9, 9, 9, 9, 4, 5};
  EXPECT_EQ(RoundTripBytes(v), v);
}

TEST(RunLengthByteTest, AlternatingValues) {
  std::vector<uint8_t> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 2);
  EXPECT_EQ(RoundTripBytes(v), v);
}

TEST(RunLengthByteTest, RandomMix) {
  Random rng(123);
  std::vector<uint8_t> v;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) {
      uint8_t b = static_cast<uint8_t>(rng.Next());
      size_t run = rng.Uniform(300) + 1;
      for (size_t j = 0; j < run; ++j) v.push_back(b);
    } else {
      v.push_back(static_cast<uint8_t>(rng.Next()));
    }
  }
  EXPECT_EQ(RoundTripBytes(v), v);
}

// ---------------------------------------------------------------- Int RLE

std::vector<int64_t> RoundTripInts(const std::vector<int64_t>& values,
                                   size_t* encoded_size = nullptr) {
  IntRleEncoder encoder;
  for (int64_t v : values) encoder.Add(v);
  std::string encoded;
  encoder.Finish(&encoded);
  if (encoded_size != nullptr) *encoded_size = encoded.size();
  IntRleDecoder decoder(encoded);
  std::vector<int64_t> out(values.size());
  EXPECT_TRUE(decoder.NextBatch(out.data(), out.size()).ok());
  EXPECT_TRUE(decoder.AtEnd());
  return out;
}

TEST(IntRleTest, Empty) {
  std::vector<int64_t> v;
  EXPECT_EQ(RoundTripInts(v), v);
}

TEST(IntRleTest, ConstantRun) {
  std::vector<int64_t> v(100000, -12345);
  size_t size;
  EXPECT_EQ(RoundTripInts(v, &size), v);
  EXPECT_LT(size, 5000u);
}

TEST(IntRleTest, DeltaRunAscending) {
  // Monotone sequences use the delta encoding (paper: run length + delta).
  std::vector<int64_t> v;
  for (int64_t i = 0; i < 100000; ++i) v.push_back(i * 3);
  size_t size;
  EXPECT_EQ(RoundTripInts(v, &size), v);
  EXPECT_LT(size, 5000u);
}

TEST(IntRleTest, DeltaRunDescending) {
  std::vector<int64_t> v;
  for (int64_t i = 0; i < 1000; ++i) v.push_back(1000000 - i * 7);
  size_t size;
  EXPECT_EQ(RoundTripInts(v, &size), v);
  EXPECT_LT(size, 100u);
}

TEST(IntRleTest, ExtremeValues) {
  std::vector<int64_t> v = {INT64_MIN, INT64_MAX, 0, -1, 1,
                            INT64_MIN, INT64_MAX};
  EXPECT_EQ(RoundTripInts(v), v);
}

TEST(IntRleTest, LiteralsThenRunThenLiterals) {
  std::vector<int64_t> v = {9, 1, 7, 5, 5, 5, 5, 5, 2, 8, 11, 12, 13, 14, 3};
  EXPECT_EQ(RoundTripInts(v), v);
}

TEST(IntRleTest, DeltaTooLargeForRunStaysLiteral) {
  std::vector<int64_t> v = {0, 1000, 2000, 3000, 4000};  // delta 1000 > 127
  EXPECT_EQ(RoundTripInts(v), v);
}

TEST(IntRleTest, RandomMix) {
  Random rng(77);
  std::vector<int64_t> v;
  for (int round = 0; round < 2000; ++round) {
    switch (rng.Uniform(3)) {
      case 0: {  // run
        int64_t base = static_cast<int64_t>(rng.Next());
        size_t n = rng.Uniform(200) + 1;
        for (size_t i = 0; i < n; ++i) v.push_back(base);
        break;
      }
      case 1: {  // arithmetic sequence
        int64_t base = rng.Range(-1000000, 1000000);
        int64_t delta = rng.Range(-128, 127);
        size_t n = rng.Uniform(200) + 1;
        for (size_t i = 0; i < n; ++i) v.push_back(base + delta * i);
        break;
      }
      default:  // literals
        v.push_back(static_cast<int64_t>(rng.Next()));
    }
  }
  EXPECT_EQ(RoundTripInts(v), v);
}

// ---------------------------------------------------------------- Bit field

std::vector<bool> RoundTripBits(const std::vector<bool>& values) {
  BitFieldEncoder encoder;
  for (bool v : values) encoder.Add(v);
  std::string encoded;
  encoder.Finish(&encoded);
  BitFieldDecoder decoder(encoded);
  std::vector<bool> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    bool b = false;
    EXPECT_TRUE(decoder.Next(&b).ok());
    out[i] = b;
  }
  return out;
}

TEST(BitFieldTest, VariousLengths) {
  Random rng(9);
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
    std::vector<bool> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = rng.Bernoulli(0.5);
    EXPECT_EQ(RoundTripBits(v), v) << "n=" << n;
  }
}

TEST(BitFieldTest, AllTrueCompressesViaByteRle) {
  std::vector<bool> v(80000, true);
  BitFieldEncoder encoder;
  for (bool b : v) encoder.Add(b);
  std::string encoded;
  encoder.Finish(&encoded);
  EXPECT_LT(encoded.size(), 200u);
  EXPECT_EQ(RoundTripBits(v), v);
}

TEST(BitFieldTest, ConcatenatedGroupsDecodeWithAlign) {
  // Two groups encoded independently and concatenated: a sequential decoder
  // must AlignToByte between them (full-scan mode in the ORC reader).
  std::vector<bool> g1 = {true, false, true};  // 3 bits -> padded byte
  std::vector<bool> g2 = {false, false, true, true, false};
  std::string encoded;
  {
    BitFieldEncoder enc;
    for (bool b : g1) enc.Add(b);
    enc.Finish(&encoded);
  }
  {
    BitFieldEncoder enc;
    for (bool b : g2) enc.Add(b);
    enc.Finish(&encoded);
  }
  BitFieldDecoder dec(encoded);
  for (bool expected : g1) {
    bool b;
    ASSERT_TRUE(dec.Next(&b).ok());
    EXPECT_EQ(b, expected);
  }
  dec.AlignToByte();
  for (bool expected : g2) {
    bool b;
    ASSERT_TRUE(dec.Next(&b).ok());
    EXPECT_EQ(b, expected);
  }
}

TEST(IntRleTest, ConcatenatedGroupsDecodeSequentially) {
  // Int RLE groups end on token boundaries, so concatenated groups decode
  // with a single decoder and no realignment.
  std::vector<int64_t> g1 = {1, 2, 3, 4, 5};
  std::vector<int64_t> g2 = {100, 100, 100, 7};
  std::string encoded;
  {
    IntRleEncoder enc;
    for (int64_t v : g1) enc.Add(v);
    enc.Finish(&encoded);
  }
  {
    IntRleEncoder enc;
    for (int64_t v : g2) enc.Add(v);
    enc.Finish(&encoded);
  }
  IntRleDecoder dec(encoded);
  std::vector<int64_t> out(g1.size() + g2.size());
  ASSERT_TRUE(dec.NextBatch(out.data(), out.size()).ok());
  std::vector<int64_t> expected = g1;
  expected.insert(expected.end(), g2.begin(), g2.end());
  EXPECT_EQ(out, expected);
}

}  // namespace
}  // namespace minihive::orc
