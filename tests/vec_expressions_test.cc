#include "vec/vector_expressions.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace minihive::vec {
namespace {

using exec::Expr;
using exec::ExprKind;
using exec::ExprPtr;

/// Builds a batch with one long column (0) and one double column (1).
std::unique_ptr<VectorizedRowBatch> TwoColumnBatch(int n) {
  auto batch = std::make_unique<VectorizedRowBatch>(n);
  batch->AddColumn(TypeKind::kBigInt);
  batch->AddColumn(TypeKind::kDouble);
  auto* longs = batch->LongCol(0);
  auto* doubles = batch->DoubleCol(1);
  for (int i = 0; i < n; ++i) {
    longs->vector[i] = i;
    doubles->vector[i] = i * 0.5;
  }
  batch->size = n;
  return batch;
}

TEST(VectorExpressionTest, LongColumnPlusScalar) {
  // The paper's Figure 8 expression: long column + constant.
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr e = Expr::Binary(ExprKind::kAdd,
                           Expr::Column(0, TypeKind::kBigInt),
                           Expr::Literal(Value::Int(100), TypeKind::kBigInt));
  int out = -1;
  auto compiled = compiler.CompileProjection(*e, &out);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  auto batch = MakeBatchFor(compiler.column_types(), 64);
  auto* longs = batch->LongCol(0);
  for (int i = 0; i < 64; ++i) longs->vector[i] = i;
  batch->size = 64;
  (*compiled)->Evaluate(batch.get());
  auto* result = batch->LongCol(out);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(result->vector[i], i + 100);
  }
}

TEST(VectorExpressionTest, ScalarMinusColumnAndColTimesCol) {
  // (1 - discount) * price with double columns.
  BatchCompiler compiler({TypeKind::kDouble, TypeKind::kDouble});
  ExprPtr discount = Expr::Column(0, TypeKind::kDouble);
  ExprPtr price = Expr::Column(1, TypeKind::kDouble);
  ExprPtr e = Expr::Binary(
      ExprKind::kMul,
      Expr::Binary(ExprKind::kSub,
                   Expr::Literal(Value::Double(1.0), TypeKind::kDouble),
                   discount),
      price);
  int out = -1;
  auto compiled = compiler.CompileProjection(*e, &out);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  auto batch = MakeBatchFor(compiler.column_types(), 128);
  auto* d = batch->DoubleCol(0);
  auto* p = batch->DoubleCol(1);
  Random rng(1);
  for (int i = 0; i < 128; ++i) {
    d->vector[i] = rng.NextDouble() * 0.1;
    p->vector[i] = rng.NextDouble() * 1000;
  }
  batch->size = 128;
  (*compiled)->Evaluate(batch.get());
  auto* result = batch->DoubleCol(out);
  for (int i = 0; i < 128; ++i) {
    EXPECT_DOUBLE_EQ(result->vector[i], (1.0 - d->vector[i]) * p->vector[i]);
  }
}

TEST(VectorExpressionTest, MixedLongDoubleArithmetic) {
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr e = Expr::Binary(ExprKind::kAdd,
                           Expr::Column(0, TypeKind::kBigInt),
                           Expr::Column(1, TypeKind::kDouble));
  int out = -1;
  auto compiled = compiler.CompileProjection(*e, &out);
  ASSERT_TRUE(compiled.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 32);
  auto* longs = batch->LongCol(0);
  auto* doubles = batch->DoubleCol(1);
  for (int i = 0; i < 32; ++i) {
    longs->vector[i] = i;
    doubles->vector[i] = 0.25;
  }
  batch->size = 32;
  (*compiled)->Evaluate(batch.get());
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(batch->DoubleCol(out)->vector[i], i + 0.25);
  }
}

TEST(VectorExpressionTest, NullPropagation) {
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr e = Expr::Binary(ExprKind::kMul,
                           Expr::Column(0, TypeKind::kBigInt),
                           Expr::Literal(Value::Int(2), TypeKind::kBigInt));
  int out = -1;
  auto compiled = compiler.CompileProjection(*e, &out);
  ASSERT_TRUE(compiled.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 8);
  auto* longs = batch->LongCol(0);
  longs->no_nulls = false;
  for (int i = 0; i < 8; ++i) {
    longs->vector[i] = i;
    longs->not_null[i] = i % 2 == 0;
  }
  batch->size = 8;
  (*compiled)->Evaluate(batch.get());
  auto* result = batch->LongCol(out);
  EXPECT_FALSE(result->no_nulls);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(result->not_null[i] != 0, i % 2 == 0);
  }
}

TEST(VectorFilterTest, SelectedArrayNarrowing) {
  // Successive filters narrow `selected` in place (paper §6.2).
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr pred = Expr::Binary(
      ExprKind::kAnd,
      Expr::Binary(ExprKind::kGe, Expr::Column(0, TypeKind::kBigInt),
                   Expr::Literal(Value::Int(10), TypeKind::kBigInt)),
      Expr::Binary(ExprKind::kLt, Expr::Column(1, TypeKind::kDouble),
                   Expr::Literal(Value::Double(20.0), TypeKind::kDouble)));
  auto filters = compiler.CompileFilter(pred);
  ASSERT_TRUE(filters.ok()) << filters.status().ToString();

  auto batch = TwoColumnBatch(100);
  for (auto& f : *filters) f->Filter(batch.get());
  // Survivors: i >= 10 and i*0.5 < 20 => 10..39.
  EXPECT_TRUE(batch->selected_in_use);
  EXPECT_EQ(batch->selected_size, 30);
  for (int j = 0; j < batch->selected_size; ++j) {
    int i = batch->selected[j];
    EXPECT_GE(i, 10);
    EXPECT_LT(i, 40);
  }
}

TEST(VectorFilterTest, BetweenFilter) {
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr pred = Expr::Between(
      Expr::Column(1, TypeKind::kDouble),
      Expr::Literal(Value::Double(5.0), TypeKind::kDouble),
      Expr::Literal(Value::Double(10.0), TypeKind::kDouble));
  auto filters = compiler.CompileFilter(pred);
  ASSERT_TRUE(filters.ok());
  auto batch = TwoColumnBatch(100);
  for (auto& f : *filters) f->Filter(batch.get());
  EXPECT_EQ(batch->selected_size, 11);  // 10..20 (i*0.5 in [5,10]).
}

TEST(VectorFilterTest, NullsNeverPassComparisons) {
  BatchCompiler compiler({TypeKind::kBigInt});
  ExprPtr pred = Expr::Binary(ExprKind::kGe,
                              Expr::Column(0, TypeKind::kBigInt),
                              Expr::Literal(Value::Int(0), TypeKind::kBigInt));
  auto filters = compiler.CompileFilter(pred);
  ASSERT_TRUE(filters.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 10);
  auto* longs = batch->LongCol(0);
  longs->no_nulls = false;
  for (int i = 0; i < 10; ++i) {
    longs->vector[i] = i;
    longs->not_null[i] = i != 3 && i != 7;
  }
  batch->size = 10;
  for (auto& f : *filters) f->Filter(batch.get());
  EXPECT_EQ(batch->selected_size, 8);
}

TEST(VectorFilterTest, StringEqualityFilter) {
  BatchCompiler compiler({TypeKind::kString});
  ExprPtr pred = Expr::Binary(
      ExprKind::kEq, Expr::Column(0, TypeKind::kString),
      Expr::Literal(Value::String("hit"), TypeKind::kString));
  auto filters = compiler.CompileFilter(pred);
  ASSERT_TRUE(filters.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 6);
  auto* strs = batch->BytesCol(0);
  const char* values[] = {"hit", "miss", "hit", "x", "hit", ""};
  for (int i = 0; i < 6; ++i) strs->SetVal(i, values[i]);
  batch->size = 6;
  for (auto& f : *filters) f->Filter(batch.get());
  EXPECT_EQ(batch->selected_size, 3);
}

TEST(VectorCompilerTest, RejectsUnsupportedShapes) {
  BatchCompiler compiler({TypeKind::kString});
  // Arithmetic over a string column must fail validation (row fallback).
  ExprPtr e = Expr::Binary(ExprKind::kAdd,
                           Expr::Column(0, TypeKind::kString),
                           Expr::Literal(Value::Int(1), TypeKind::kBigInt));
  int out;
  EXPECT_TRUE(compiler.CompileProjection(*e, &out)
                  .status()
                  .IsNotImplemented());
  // OR is not supported by the in-place filter set.
  ExprPtr pred = Expr::Binary(
      ExprKind::kOr,
      Expr::Binary(ExprKind::kEq, Expr::Column(0, TypeKind::kString),
                   Expr::Literal(Value::String("a"), TypeKind::kString)),
      Expr::Binary(ExprKind::kEq, Expr::Column(0, TypeKind::kString),
                   Expr::Literal(Value::String("b"), TypeKind::kString)));
  EXPECT_TRUE(compiler.CompileFilter(pred).status().IsNotImplemented());
}

}  // namespace
}  // namespace minihive::vec
