#include "vec/vector_expressions.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "common/random.h"
#include "vec/simd.h"

namespace minihive::vec {
namespace {

using exec::Expr;
using exec::ExprKind;
using exec::ExprPtr;

/// Builds a batch with one long column (0) and one double column (1).
std::unique_ptr<VectorizedRowBatch> TwoColumnBatch(int n) {
  auto batch = std::make_unique<VectorizedRowBatch>(n);
  batch->AddColumn(TypeKind::kBigInt);
  batch->AddColumn(TypeKind::kDouble);
  auto* longs = batch->LongCol(0);
  auto* doubles = batch->DoubleCol(1);
  for (int i = 0; i < n; ++i) {
    longs->vector[i] = i;
    doubles->vector[i] = i * 0.5;
  }
  batch->size = n;
  return batch;
}

TEST(VectorExpressionTest, LongColumnPlusScalar) {
  // The paper's Figure 8 expression: long column + constant.
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr e = Expr::Binary(ExprKind::kAdd,
                           Expr::Column(0, TypeKind::kBigInt),
                           Expr::Literal(Value::Int(100), TypeKind::kBigInt));
  int out = -1;
  auto compiled = compiler.CompileProjection(*e, &out);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  auto batch = MakeBatchFor(compiler.column_types(), 64);
  auto* longs = batch->LongCol(0);
  for (int i = 0; i < 64; ++i) longs->vector[i] = i;
  batch->size = 64;
  (*compiled)->Evaluate(batch.get());
  auto* result = batch->LongCol(out);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(result->vector[i], i + 100);
  }
}

TEST(VectorExpressionTest, ScalarMinusColumnAndColTimesCol) {
  // (1 - discount) * price with double columns.
  BatchCompiler compiler({TypeKind::kDouble, TypeKind::kDouble});
  ExprPtr discount = Expr::Column(0, TypeKind::kDouble);
  ExprPtr price = Expr::Column(1, TypeKind::kDouble);
  ExprPtr e = Expr::Binary(
      ExprKind::kMul,
      Expr::Binary(ExprKind::kSub,
                   Expr::Literal(Value::Double(1.0), TypeKind::kDouble),
                   discount),
      price);
  int out = -1;
  auto compiled = compiler.CompileProjection(*e, &out);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  auto batch = MakeBatchFor(compiler.column_types(), 128);
  auto* d = batch->DoubleCol(0);
  auto* p = batch->DoubleCol(1);
  Random rng(1);
  for (int i = 0; i < 128; ++i) {
    d->vector[i] = rng.NextDouble() * 0.1;
    p->vector[i] = rng.NextDouble() * 1000;
  }
  batch->size = 128;
  (*compiled)->Evaluate(batch.get());
  auto* result = batch->DoubleCol(out);
  for (int i = 0; i < 128; ++i) {
    EXPECT_DOUBLE_EQ(result->vector[i], (1.0 - d->vector[i]) * p->vector[i]);
  }
}

TEST(VectorExpressionTest, MixedLongDoubleArithmetic) {
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr e = Expr::Binary(ExprKind::kAdd,
                           Expr::Column(0, TypeKind::kBigInt),
                           Expr::Column(1, TypeKind::kDouble));
  int out = -1;
  auto compiled = compiler.CompileProjection(*e, &out);
  ASSERT_TRUE(compiled.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 32);
  auto* longs = batch->LongCol(0);
  auto* doubles = batch->DoubleCol(1);
  for (int i = 0; i < 32; ++i) {
    longs->vector[i] = i;
    doubles->vector[i] = 0.25;
  }
  batch->size = 32;
  (*compiled)->Evaluate(batch.get());
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(batch->DoubleCol(out)->vector[i], i + 0.25);
  }
}

TEST(VectorExpressionTest, NullPropagation) {
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr e = Expr::Binary(ExprKind::kMul,
                           Expr::Column(0, TypeKind::kBigInt),
                           Expr::Literal(Value::Int(2), TypeKind::kBigInt));
  int out = -1;
  auto compiled = compiler.CompileProjection(*e, &out);
  ASSERT_TRUE(compiled.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 8);
  auto* longs = batch->LongCol(0);
  longs->no_nulls = false;
  for (int i = 0; i < 8; ++i) {
    longs->vector[i] = i;
    longs->not_null[i] = i % 2 == 0;
  }
  batch->size = 8;
  (*compiled)->Evaluate(batch.get());
  auto* result = batch->LongCol(out);
  EXPECT_FALSE(result->no_nulls);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(result->not_null[i] != 0, i % 2 == 0);
  }
}

TEST(VectorFilterTest, SelectedArrayNarrowing) {
  // Successive filters narrow `selected` in place (paper §6.2).
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr pred = Expr::Binary(
      ExprKind::kAnd,
      Expr::Binary(ExprKind::kGe, Expr::Column(0, TypeKind::kBigInt),
                   Expr::Literal(Value::Int(10), TypeKind::kBigInt)),
      Expr::Binary(ExprKind::kLt, Expr::Column(1, TypeKind::kDouble),
                   Expr::Literal(Value::Double(20.0), TypeKind::kDouble)));
  auto filters = compiler.CompileFilter(pred);
  ASSERT_TRUE(filters.ok()) << filters.status().ToString();

  auto batch = TwoColumnBatch(100);
  for (auto& f : *filters) f->Filter(batch.get());
  // Survivors: i >= 10 and i*0.5 < 20 => 10..39.
  EXPECT_TRUE(batch->selected_in_use);
  EXPECT_EQ(batch->selected_size, 30);
  for (int j = 0; j < batch->selected_size; ++j) {
    int i = batch->selected[j];
    EXPECT_GE(i, 10);
    EXPECT_LT(i, 40);
  }
}

TEST(VectorFilterTest, BetweenFilter) {
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr pred = Expr::Between(
      Expr::Column(1, TypeKind::kDouble),
      Expr::Literal(Value::Double(5.0), TypeKind::kDouble),
      Expr::Literal(Value::Double(10.0), TypeKind::kDouble));
  auto filters = compiler.CompileFilter(pred);
  ASSERT_TRUE(filters.ok());
  auto batch = TwoColumnBatch(100);
  for (auto& f : *filters) f->Filter(batch.get());
  EXPECT_EQ(batch->selected_size, 11);  // 10..20 (i*0.5 in [5,10]).
}

TEST(VectorFilterTest, NullsNeverPassComparisons) {
  BatchCompiler compiler({TypeKind::kBigInt});
  ExprPtr pred = Expr::Binary(ExprKind::kGe,
                              Expr::Column(0, TypeKind::kBigInt),
                              Expr::Literal(Value::Int(0), TypeKind::kBigInt));
  auto filters = compiler.CompileFilter(pred);
  ASSERT_TRUE(filters.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 10);
  auto* longs = batch->LongCol(0);
  longs->no_nulls = false;
  for (int i = 0; i < 10; ++i) {
    longs->vector[i] = i;
    longs->not_null[i] = i != 3 && i != 7;
  }
  batch->size = 10;
  for (auto& f : *filters) f->Filter(batch.get());
  EXPECT_EQ(batch->selected_size, 8);
}

TEST(VectorFilterTest, StringEqualityFilter) {
  BatchCompiler compiler({TypeKind::kString});
  ExprPtr pred = Expr::Binary(
      ExprKind::kEq, Expr::Column(0, TypeKind::kString),
      Expr::Literal(Value::String("hit"), TypeKind::kString));
  auto filters = compiler.CompileFilter(pred);
  ASSERT_TRUE(filters.ok());
  auto batch = MakeBatchFor(compiler.column_types(), 6);
  auto* strs = batch->BytesCol(0);
  const char* values[] = {"hit", "miss", "hit", "x", "hit", ""};
  for (int i = 0; i < 6; ++i) strs->SetVal(i, values[i]);
  batch->size = 6;
  for (auto& f : *filters) f->Filter(batch.get());
  EXPECT_EQ(batch->selected_size, 3);
}

TEST(VectorCompilerTest, RejectsUnsupportedShapes) {
  BatchCompiler compiler({TypeKind::kString});
  // Arithmetic over a string column must fail validation (row fallback).
  ExprPtr e = Expr::Binary(ExprKind::kAdd,
                           Expr::Column(0, TypeKind::kString),
                           Expr::Literal(Value::Int(1), TypeKind::kBigInt));
  int out;
  EXPECT_TRUE(compiler.CompileProjection(*e, &out)
                  .status()
                  .IsNotImplemented());
  // OR is not supported by the in-place filter set.
  ExprPtr pred = Expr::Binary(
      ExprKind::kOr,
      Expr::Binary(ExprKind::kEq, Expr::Column(0, TypeKind::kString),
                   Expr::Literal(Value::String("a"), TypeKind::kString)),
      Expr::Binary(ExprKind::kEq, Expr::Column(0, TypeKind::kString),
                   Expr::Literal(Value::String("b"), TypeKind::kString)));
  EXPECT_TRUE(compiler.CompileFilter(pred).status().IsNotImplemented());
}

// ------------------------------------------------------------------
// SIMD dispatch: both arms (AVX2 when compiled in and present, scalar
// otherwise) must be byte-identical on every kernel, including the nasty
// cases — int64 wraparound, NaN comparisons, division by zero, ragged tails.

class SimdIdentityTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::SetEnabled(true); }

  /// Runs `fn` with SIMD off then on and returns both results.
  template <typename Fn>
  static auto BothArms(Fn fn) {
    simd::SetEnabled(false);
    auto scalar = fn();
    simd::SetEnabled(true);
    auto vector = fn();
    return std::pair(std::move(scalar), std::move(vector));
  }
};

TEST_F(SimdIdentityTest, CompareAndBetweenMasks) {
  Random rng(41);
  for (int n : {0, 1, 3, 4, 7, 64, 100}) {
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    for (int i = 0; i < n; ++i) {
      ints.push_back(static_cast<int64_t>(rng.Uniform(1000)) - 500);
      doubles.push_back(static_cast<double>(ints.back()) * 0.25);
    }
    if (n > 2) doubles[n / 2] = std::numeric_limits<double>::quiet_NaN();
    for (simd::Cmp cmp : {simd::Cmp::kEq, simd::Cmp::kNe, simd::Cmp::kLt,
                          simd::Cmp::kLe, simd::Cmp::kGt, simd::Cmp::kGe}) {
      auto [s, v] = BothArms([&] {
        std::vector<uint8_t> mask(n);
        simd::CompareMaskI64(cmp, ints.data(), 17, n, mask.data());
        std::vector<uint8_t> dmask(n);
        simd::CompareMaskF64(cmp, doubles.data(), 4.25, n, dmask.data());
        mask.insert(mask.end(), dmask.begin(), dmask.end());
        return mask;
      });
      EXPECT_EQ(s, v) << "cmp " << static_cast<int>(cmp) << " n " << n;
    }
    auto [s, v] = BothArms([&] {
      std::vector<uint8_t> mask(n);
      simd::BetweenMaskI64(ints.data(), -100, 100, n, mask.data());
      std::vector<uint8_t> dmask(n);
      simd::BetweenMaskF64(doubles.data(), -25.0, 25.0, n, dmask.data());
      mask.insert(mask.end(), dmask.begin(), dmask.end());
      return mask;
    });
    EXPECT_EQ(s, v) << "between n " << n;
  }
}

TEST_F(SimdIdentityTest, ArithmeticIncludingWraparoundAndDivZero) {
  Random rng(43);
  int n = 100;
  std::vector<int64_t> a, b;
  std::vector<double> da, db;
  for (int i = 0; i < n; ++i) {
    a.push_back(static_cast<int64_t>(rng.Next()));  // Wraps on mul/add.
    b.push_back(static_cast<int64_t>(rng.Next()));
    da.push_back(static_cast<double>(rng.Uniform(100)) - 50);
    db.push_back(i % 5 == 0 ? 0.0 : da.back() + 1);  // Division by zero.
  }
  for (simd::Arith op : {simd::Arith::kAdd, simd::Arith::kSub,
                         simd::Arith::kMul}) {
    auto [s, v] = BothArms([&] {
      std::vector<int64_t> out(n);
      simd::ArithColColI64(op, a.data(), b.data(), n, out.data());
      std::vector<int64_t> out2(n);
      simd::ArithScalarI64(op, a.data(), 7919, /*scalar_left=*/false, n,
                           out2.data());
      std::vector<int64_t> out3(n);
      simd::ArithScalarI64(op, a.data(), 7919, /*scalar_left=*/true, n,
                           out3.data());
      out.insert(out.end(), out2.begin(), out2.end());
      out.insert(out.end(), out3.begin(), out3.end());
      return out;
    });
    EXPECT_EQ(s, v) << "i64 op " << static_cast<int>(op);
  }
  for (simd::Arith op : {simd::Arith::kAdd, simd::Arith::kSub,
                         simd::Arith::kMul, simd::Arith::kDiv}) {
    auto [s, v] = BothArms([&] {
      std::vector<double> out(n);
      simd::ArithColColF64(op, da.data(), db.data(), n, out.data());
      std::vector<double> out2(n);
      simd::ArithScalarF64(op, da.data(), 0.0, /*scalar_left=*/true, n,
                           out2.data());
      out.insert(out.end(), out2.begin(), out2.end());
      return out;
    });
    // Compare bit patterns so -0.0 vs 0.0 or NaN payloads can't hide.
    ASSERT_EQ(s.size(), v.size());
    for (size_t i = 0; i < s.size(); ++i) {
      uint64_t sb, vb;
      std::memcpy(&sb, &s[i], 8);
      std::memcpy(&vb, &v[i], 8);
      EXPECT_EQ(sb, vb) << "f64 op " << static_cast<int>(op) << " idx " << i;
    }
  }
}

TEST_F(SimdIdentityTest, HashBytesAndMaskToSelected) {
  Random rng(47);
  for (int len : {0, 1, 7, 31, 32, 33, 64, 100, 257}) {
    std::string data = rng.NextString(len);
    auto [s, v] = BothArms([&] {
      return simd::HashBytes(reinterpret_cast<const uint8_t*>(data.data()),
                             data.size(), 99);
    });
    EXPECT_EQ(s, v) << "len " << len;
  }
  // Distinct inputs should hash apart (sanity, not identity).
  auto h1 = simd::HashBytes(reinterpret_cast<const uint8_t*>("hello"), 5, 0);
  auto h2 = simd::HashBytes(reinterpret_cast<const uint8_t*>("hellp"), 5, 0);
  EXPECT_NE(h1, h2);

  std::vector<uint8_t> mask = {1, 0, 0, 1, 1, 0, 1};
  std::vector<int> sel(mask.size());
  int count = simd::MaskToSelected(mask.data(), static_cast<int>(mask.size()),
                                   sel.data());
  ASSERT_EQ(count, 4);
  EXPECT_EQ(sel[0], 0);
  EXPECT_EQ(sel[1], 3);
  EXPECT_EQ(sel[2], 4);
  EXPECT_EQ(sel[3], 6);
}

TEST_F(SimdIdentityTest, FilterKernelsAgreeAcrossDispatchArms) {
  // End-to-end: the compiled filter's SIMD fast path and the scalar
  // FilterLoop must produce the same selection vector.
  BatchCompiler compiler({TypeKind::kBigInt, TypeKind::kDouble});
  ExprPtr pred = Expr::Binary(
      ExprKind::kAnd,
      Expr::Binary(ExprKind::kGt, Expr::Column(0, TypeKind::kBigInt),
                   Expr::Literal(Value::Int(20), TypeKind::kBigInt)),
      Expr::Binary(ExprKind::kLe, Expr::Column(1, TypeKind::kDouble),
                   Expr::Literal(Value::Double(28.0), TypeKind::kDouble)));
  auto filters = std::move(compiler.CompileFilter(pred)).ValueOrDie();
  auto run = [&] {
    auto batch = TwoColumnBatch(100);
    for (auto& f : filters) f->Filter(batch.get());
    std::vector<int> sel(batch->selected.begin(),
                         batch->selected.begin() + batch->selected_size);
    return sel;
  };
  simd::SetEnabled(false);
  auto scalar_sel = run();
  simd::SetEnabled(true);
  auto simd_sel = run();
  EXPECT_EQ(scalar_sel, simd_sel);
  // ids 21..56 survive (0.5 * id <= 28).
  ASSERT_FALSE(simd_sel.empty());
  EXPECT_EQ(simd_sel.front(), 21);
  EXPECT_EQ(simd_sel.back(), 56);
}

}  // namespace
}  // namespace minihive::vec
