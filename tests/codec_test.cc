#include "codec/codec.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace minihive::codec {
namespace {

class CodecRoundTrip : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(CodecRoundTrip, EmptyInput) {
  const Codec* codec = GetCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  std::string compressed, output;
  ASSERT_TRUE(codec->Compress("", &compressed).ok());
  ASSERT_TRUE(codec->Decompress(compressed, &output).ok());
  EXPECT_EQ(output, "");
}

TEST_P(CodecRoundTrip, ShortStrings) {
  const Codec* codec = GetCodec(GetParam());
  for (const std::string input :
       {"a", "ab", "abc", "aaaa", "abcabcabcabc", "hello world hello world"}) {
    std::string compressed, output;
    ASSERT_TRUE(codec->Compress(input, &compressed).ok());
    ASSERT_TRUE(codec->Decompress(compressed, &output).ok());
    EXPECT_EQ(output, input);
  }
}

TEST_P(CodecRoundTrip, HighlyRepetitive) {
  const Codec* codec = GetCodec(GetParam());
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "the quick brown fox ";
  std::string compressed, output;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  EXPECT_LT(compressed.size(), input.size() / 10)
      << "repetitive data should compress well";
  ASSERT_TRUE(codec->Decompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST_P(CodecRoundTrip, RandomBinary) {
  const Codec* codec = GetCodec(GetParam());
  Random rng(42);
  std::string input;
  for (int i = 0; i < 100000; ++i) {
    input.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  std::string compressed, output;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  ASSERT_TRUE(codec->Decompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST_P(CodecRoundTrip, MixedStructure) {
  const Codec* codec = GetCodec(GetParam());
  Random rng(7);
  std::string input;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Bernoulli(0.5)) {
      input += "common-prefix-";
    }
    input += rng.NextString(rng.Uniform(20));
    input.push_back('\n');
  }
  std::string compressed, output;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  EXPECT_LT(compressed.size(), input.size());
  ASSERT_TRUE(codec->Decompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST_P(CodecRoundTrip, OverlappingMatchRunLength) {
  // distance < match_len exercises the forward-copy path.
  const Codec* codec = GetCodec(GetParam());
  std::string input(100000, 'x');
  std::string compressed, output;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  EXPECT_LT(compressed.size(), 100u);
  ASSERT_TRUE(codec->Decompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTrip,
                         ::testing::Values(CompressionKind::kFastLz,
                                           CompressionKind::kDeepLz),
                         [](const auto& info) {
                           return CompressionKindName(info.param);
                         });

TEST(CodecTest, DeepLzCompressesBetterOnStructuredData) {
  std::string input;
  Random rng(3);
  std::vector<std::string> words = {"alpha", "beta", "gamma", "delta",
                                    "epsilon"};
  for (int i = 0; i < 20000; ++i) {
    input += words[rng.Uniform(words.size())];
    input.push_back(' ');
  }
  std::string fast, deep;
  ASSERT_TRUE(GetCodec(CompressionKind::kFastLz)->Compress(input, &fast).ok());
  ASSERT_TRUE(GetCodec(CompressionKind::kDeepLz)->Compress(input, &deep).ok());
  EXPECT_LE(deep.size(), fast.size());
}

TEST(CodecTest, DecompressRejectsCorruptDistance) {
  std::string bogus;
  // literal_len=0, match_len=4, distance=100 (no prior output).
  bogus.push_back(0);
  bogus.push_back(4);
  bogus.push_back(100);
  std::string output;
  EXPECT_FALSE(
      GetCodec(CompressionKind::kFastLz)->Decompress(bogus, &output).ok());
}

TEST(CompressionUnitsTest, RoundTripMultipleUnits) {
  const Codec* codec = GetCodec(CompressionKind::kFastLz);
  Random rng(11);
  std::string input;
  for (int i = 0; i < 3000; ++i) input += rng.NextString(100);
  std::string framed, output;
  ASSERT_TRUE(CompressToUnits(codec, input, 4096, &framed).ok());
  ASSERT_TRUE(DecompressUnits(codec, framed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(CompressionUnitsTest, NoCodecStoresRaw) {
  std::string framed, output;
  ASSERT_TRUE(CompressToUnits(nullptr, "hello units", 4, &framed).ok());
  ASSERT_TRUE(DecompressUnits(nullptr, framed, &output).ok());
  EXPECT_EQ(output, "hello units");
}

TEST(CompressionUnitsTest, EmptyPayload) {
  std::string framed, output;
  ASSERT_TRUE(CompressToUnits(nullptr, "", 4096, &framed).ok());
  ASSERT_TRUE(DecompressUnits(nullptr, framed, &output).ok());
  EXPECT_EQ(output, "");
}

TEST(CompressionUnitsTest, IncompressibleUnitStoredRaw) {
  const Codec* codec = GetCodec(CompressionKind::kFastLz);
  Random rng(5);
  std::string input;
  for (int i = 0; i < 1024; ++i) {
    input.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  std::string framed, output;
  ASSERT_TRUE(CompressToUnits(codec, input, 256, &framed).ok());
  ASSERT_TRUE(DecompressUnits(codec, framed, &output).ok());
  EXPECT_EQ(output, input);
}

}  // namespace
}  // namespace minihive::codec
