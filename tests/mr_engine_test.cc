#include "mr/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "common/random.h"

namespace minihive::mr {
namespace {

/// Map task: emits (value % buckets, value) for each of its assigned
/// synthetic records (the split length doubles as a record count).
class ModuloMapTask : public MapTask {
 public:
  explicit ModuloMapTask(int buckets) : buckets_(buckets) {}
  Status Run(const InputSplit& split, int task_index,
             ShuffleEmitter* emitter) override {
    (void)task_index;
    for (uint64_t i = split.offset; i < split.offset + split.length; ++i) {
      MINIHIVE_RETURN_IF_ERROR(
          emitter->Emit({Value::Int(static_cast<int64_t>(i % buckets_))},
                        {Value::Int(static_cast<int64_t>(i))}, 0));
    }
    return Status::OK();
  }

 private:
  int buckets_;
};

/// Reduce task: records group transitions and per-group sums into a shared
/// sink (mutex-guarded).
struct GroupRecord {
  int64_t key;
  int64_t sum = 0;
  int64_t count = 0;
};

class CollectingReduceTask : public ReduceTask {
 public:
  CollectingReduceTask(std::mutex* mutex, std::vector<GroupRecord>* sink)
      : mutex_(mutex), sink_(sink) {}

  Status StartGroup(const Row& key) override {
    if (open_) return Status::Internal("nested StartGroup");
    open_ = true;
    current_ = GroupRecord{key[0].AsInt()};
    return Status::OK();
  }
  Status Reduce(const Row& key, const Row& value, int tag) override {
    if (!open_) return Status::Internal("Reduce outside group");
    if (key[0].AsInt() != current_.key) {
      return Status::Internal("key changed within group");
    }
    if (tag != 0) return Status::Internal("unexpected tag");
    current_.sum += value[0].AsInt();
    ++current_.count;
    return Status::OK();
  }
  Status EndGroup() override {
    if (!open_) return Status::Internal("EndGroup without StartGroup");
    open_ = false;
    std::lock_guard<std::mutex> lock(*mutex_);
    sink_->push_back(current_);
    return Status::OK();
  }
  Status Finish() override {
    return open_ ? Status::Internal("Finish with open group") : Status::OK();
  }

 private:
  std::mutex* mutex_;
  std::vector<GroupRecord>* sink_;
  bool open_ = false;
  GroupRecord current_{0};
};

TEST(EngineTest, GroupSignalsAndPartitioning) {
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{4, 0});
  JobConfig job;
  job.name = "wordcount-ish";
  // 10 splits of 1000 synthetic records each.
  for (int s = 0; s < 10; ++s) {
    job.splits.push_back({"", static_cast<uint64_t>(s) * 1000, 1000, -1, 0});
  }
  job.num_reducers = 4;
  job.map_factory = [] { return std::make_unique<ModuloMapTask>(97); };
  std::mutex mutex;
  std::vector<GroupRecord> groups;
  job.reduce_factory = [&](int) {
    return std::make_unique<CollectingReduceTask>(&mutex, &groups);
  };
  JobCounters counters;
  ASSERT_TRUE(engine.RunJob(job, &counters).ok());

  // 97 distinct keys, each appearing exactly once across all reducers.
  ASSERT_EQ(groups.size(), 97u);
  std::map<int64_t, GroupRecord> by_key;
  for (const GroupRecord& g : groups) {
    ASSERT_EQ(by_key.count(g.key), 0u) << "key split across groups";
    by_key[g.key] = g;
  }
  int64_t total = 0;
  int64_t count = 0;
  for (auto& [key, g] : by_key) {
    total += g.sum;
    count += g.count;
  }
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(total, 9999LL * 10000 / 2);
  EXPECT_EQ(counters.map_output_records.load(), 10000u);
  EXPECT_EQ(counters.reduce_input_records.load(), 10000u);
  EXPECT_EQ(counters.map_tasks, 10);
  EXPECT_EQ(counters.reduce_tasks, 4);
  EXPECT_GT(counters.cpu_nanos.load(), 0);
}

TEST(EngineTest, SortOrderWithinPartition) {
  // Keys within a reduce partition must arrive in sorted order, honouring
  // per-column direction.
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{1, 0});
  JobConfig job;
  job.splits.push_back({"", 0, 500, -1, 0});
  job.num_reducers = 1;
  job.sort_ascending = {false};  // Descending.
  job.map_factory = [] { return std::make_unique<ModuloMapTask>(50); };
  std::mutex mutex;
  std::vector<GroupRecord> groups;
  job.reduce_factory = [&](int) {
    return std::make_unique<CollectingReduceTask>(&mutex, &groups);
  };
  JobCounters counters;
  ASSERT_TRUE(engine.RunJob(job, &counters).ok());
  ASSERT_EQ(groups.size(), 50u);
  for (size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GT(groups[i - 1].key, groups[i].key) << "descending order broken";
  }
}

TEST(EngineTest, MapErrorPropagates) {
  class FailingMapTask : public MapTask {
   public:
    Status Run(const InputSplit&, int, ShuffleEmitter*) override {
      return Status::IoError("synthetic map failure");
    }
  };
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{2, 0});
  JobConfig job;
  job.splits.push_back({"", 0, 10, -1, 0});
  job.map_factory = [] { return std::make_unique<FailingMapTask>(); };
  JobCounters counters;
  Status status = engine.RunJob(job, &counters);
  EXPECT_TRUE(status.IsIoError()) << status.ToString();
}

TEST(EngineTest, MapOnlyJobSkipsShuffle) {
  class CountingMapTask : public MapTask {
   public:
    explicit CountingMapTask(std::atomic<int>* runs) : runs_(runs) {}
    Status Run(const InputSplit&, int, ShuffleEmitter*) override {
      runs_->fetch_add(1);
      return Status::OK();
    }
    std::atomic<int>* runs_;
  };
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{2, 0});
  std::atomic<int> runs{0};
  JobConfig job;
  for (int i = 0; i < 5; ++i) job.splits.push_back({"", 0, 1, -1, 0});
  job.num_reducers = 0;
  job.map_factory = [&] { return std::make_unique<CountingMapTask>(&runs); };
  JobCounters counters;
  ASSERT_TRUE(engine.RunJob(job, &counters).ok());
  EXPECT_EQ(runs.load(), 5);
  EXPECT_EQ(counters.reduce_tasks, 0);
}

TEST(ComputeSplitsTest, SplitsCoverFilesWithLocality) {
  dfs::FileSystemOptions options;
  options.block_size = 1000;
  dfs::FileSystem fs(options);
  auto w = std::move(fs.Create("/data")).ValueOrDie();
  ASSERT_TRUE(w->Append(std::string(3500, 'x')).ok());
  ASSERT_TRUE(w->Close().ok());

  std::vector<InputSplit> splits = ComputeSplits(&fs, {"/data"}, 1000, 7);
  ASSERT_EQ(splits.size(), 4u);
  uint64_t covered = 0;
  for (const InputSplit& split : splits) {
    EXPECT_EQ(split.source_tag, 7);
    EXPECT_GE(split.locality_host, 0);
    covered += split.length;
  }
  EXPECT_EQ(covered, 3500u);
}

TEST(EstimateRowBytesTest, GrowsWithContent) {
  Row small = {Value::Int(1)};
  Row big = {Value::Int(1), Value::String(std::string(100, 'x')),
             Value::Double(1.5)};
  EXPECT_LT(EstimateRowBytes(small), EstimateRowBytes(big));
  EXPECT_GE(EstimateRowBytes(big), 100u);
}

}  // namespace
}  // namespace minihive::mr
