#include "mr/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>

#include "common/random.h"

namespace minihive::mr {
namespace {

/// Map task: emits (value % buckets, value) for each of its assigned
/// synthetic records (the split length doubles as a record count).
class ModuloMapTask : public MapTask {
 public:
  explicit ModuloMapTask(int buckets) : buckets_(buckets) {}
  Status Run(const InputSplit& split, int task_index, int attempt,
             ShuffleEmitter* emitter) override {
    (void)task_index;
    (void)attempt;
    for (uint64_t i = split.offset; i < split.offset + split.length; ++i) {
      MINIHIVE_RETURN_IF_ERROR(
          emitter->Emit({Value::Int(static_cast<int64_t>(i % buckets_))},
                        {Value::Int(static_cast<int64_t>(i))}, 0));
    }
    return Status::OK();
  }

 private:
  int buckets_;
};

/// Reduce task: records group transitions and per-group sums into a shared
/// sink (mutex-guarded).
struct GroupRecord {
  int64_t key;
  int64_t sum = 0;
  int64_t count = 0;
};

class CollectingReduceTask : public ReduceTask {
 public:
  CollectingReduceTask(std::mutex* mutex, std::vector<GroupRecord>* sink)
      : mutex_(mutex), sink_(sink) {}

  Status StartGroup(const Row& key) override {
    if (open_) return Status::Internal("nested StartGroup");
    open_ = true;
    current_ = GroupRecord{key[0].AsInt()};
    return Status::OK();
  }
  Status Reduce(const Row& key, const Row& value, int tag) override {
    if (!open_) return Status::Internal("Reduce outside group");
    if (key[0].AsInt() != current_.key) {
      return Status::Internal("key changed within group");
    }
    if (tag != 0) return Status::Internal("unexpected tag");
    current_.sum += value[0].AsInt();
    ++current_.count;
    return Status::OK();
  }
  Status EndGroup() override {
    if (!open_) return Status::Internal("EndGroup without StartGroup");
    open_ = false;
    std::lock_guard<std::mutex> lock(*mutex_);
    sink_->push_back(current_);
    return Status::OK();
  }
  Status Finish() override {
    return open_ ? Status::Internal("Finish with open group") : Status::OK();
  }

 private:
  std::mutex* mutex_;
  std::vector<GroupRecord>* sink_;
  bool open_ = false;
  GroupRecord current_{0};
};

TEST(EngineTest, GroupSignalsAndPartitioning) {
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{4, 0});
  JobConfig job;
  job.name = "wordcount-ish";
  // 10 splits of 1000 synthetic records each.
  for (int s = 0; s < 10; ++s) {
    job.splits.push_back({"", static_cast<uint64_t>(s) * 1000, 1000, -1, 0});
  }
  job.num_reducers = 4;
  job.map_factory = [] { return std::make_unique<ModuloMapTask>(97); };
  std::mutex mutex;
  std::vector<GroupRecord> groups;
  job.reduce_factory = [&](int, int) {
    return std::make_unique<CollectingReduceTask>(&mutex, &groups);
  };
  JobCounters counters;
  ASSERT_TRUE(engine.RunJob(job, &counters).ok());

  // 97 distinct keys, each appearing exactly once across all reducers.
  ASSERT_EQ(groups.size(), 97u);
  std::map<int64_t, GroupRecord> by_key;
  for (const GroupRecord& g : groups) {
    ASSERT_EQ(by_key.count(g.key), 0u) << "key split across groups";
    by_key[g.key] = g;
  }
  int64_t total = 0;
  int64_t count = 0;
  for (auto& [key, g] : by_key) {
    total += g.sum;
    count += g.count;
  }
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(total, 9999LL * 10000 / 2);
  EXPECT_EQ(counters.map_output_records.load(), 10000u);
  EXPECT_EQ(counters.reduce_input_records.load(), 10000u);
  EXPECT_EQ(counters.map_tasks, 10);
  EXPECT_EQ(counters.reduce_tasks, 4);
  EXPECT_GT(counters.cpu_nanos.load(), 0);
}

TEST(EngineTest, SortOrderWithinPartition) {
  // Keys within a reduce partition must arrive in sorted order, honouring
  // per-column direction.
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{1, 0});
  JobConfig job;
  job.splits.push_back({"", 0, 500, -1, 0});
  job.num_reducers = 1;
  job.sort_ascending = {false};  // Descending.
  job.map_factory = [] { return std::make_unique<ModuloMapTask>(50); };
  std::mutex mutex;
  std::vector<GroupRecord> groups;
  job.reduce_factory = [&](int, int) {
    return std::make_unique<CollectingReduceTask>(&mutex, &groups);
  };
  JobCounters counters;
  ASSERT_TRUE(engine.RunJob(job, &counters).ok());
  ASSERT_EQ(groups.size(), 50u);
  for (size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GT(groups[i - 1].key, groups[i].key) << "descending order broken";
  }
}

TEST(EngineTest, MapErrorPropagates) {
  class FailingMapTask : public MapTask {
   public:
    Status Run(const InputSplit&, int, int, ShuffleEmitter*) override {
      return Status::IoError("synthetic map failure");
    }
  };
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{2, 0});
  JobConfig job;
  job.splits.push_back({"", 0, 10, -1, 0});
  job.map_factory = [] { return std::make_unique<FailingMapTask>(); };
  JobCounters counters;
  Status status = engine.RunJob(job, &counters);
  EXPECT_TRUE(status.IsIoError()) << status.ToString();
}

TEST(EngineTest, MapOnlyJobSkipsShuffle) {
  class CountingMapTask : public MapTask {
   public:
    explicit CountingMapTask(std::atomic<int>* runs) : runs_(runs) {}
    Status Run(const InputSplit&, int, int, ShuffleEmitter*) override {
      runs_->fetch_add(1);
      return Status::OK();
    }
    std::atomic<int>* runs_;
  };
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{2, 0});
  std::atomic<int> runs{0};
  JobConfig job;
  for (int i = 0; i < 5; ++i) job.splits.push_back({"", 0, 1, -1, 0});
  job.num_reducers = 0;
  job.map_factory = [&] { return std::make_unique<CountingMapTask>(&runs); };
  JobCounters counters;
  ASSERT_TRUE(engine.RunJob(job, &counters).ok());
  EXPECT_EQ(runs.load(), 5);
  EXPECT_EQ(counters.reduce_tasks, 0);
}

TEST(ComputeSplitsTest, SplitsCoverFilesWithLocality) {
  dfs::FileSystemOptions options;
  options.block_size = 1000;
  dfs::FileSystem fs(options);
  auto w = std::move(fs.Create("/data")).ValueOrDie();
  ASSERT_TRUE(w->Append(std::string(3500, 'x')).ok());
  ASSERT_TRUE(w->Close().ok());

  std::vector<InputSplit> splits =
      std::move(ComputeSplits(&fs, {"/data"}, 1000, 7)).ValueOrDie();
  ASSERT_EQ(splits.size(), 4u);
  uint64_t covered = 0;
  for (const InputSplit& split : splits) {
    EXPECT_EQ(split.source_tag, 7);
    EXPECT_GE(split.locality_host, 0);
    covered += split.length;
  }
  EXPECT_EQ(covered, 3500u);
}

TEST(ComputeSplitsTest, UnreadableFileIsAnError) {
  dfs::FileSystem fs;
  auto w = std::move(fs.Create("/exists")).ValueOrDie();
  ASSERT_TRUE(w->Append("payload").ok());
  ASSERT_TRUE(w->Close().ok());

  auto result = ComputeSplits(&fs, {"/exists", "/missing"}, 1000, 0);
  ASSERT_FALSE(result.ok()) << "missing input must fail the job, not shrink it";
}

/// Combiner for ModuloMapTask output: sums values and counts records per
/// key group, re-emitting one (key, [sum, count]) record. The matching
/// reduce side below re-merges by summing both columns, so combined and
/// uncombined runs mix correctly.
class SummingCombiner : public ReduceTask {
 public:
  explicit SummingCombiner(ShuffleEmitter* out) : out_(out) {}

  Status StartGroup(const Row& key) override {
    key_ = key;
    sum_ = 0;
    count_ = 0;
    return Status::OK();
  }
  Status Reduce(const Row&, const Row& value, int) override {
    // Accepts both raw map output ([v]) and already-combined records
    // ([sum, count]).
    sum_ += value[0].AsInt();
    count_ += value.size() > 1 ? value[1].AsInt() : 1;
    return Status::OK();
  }
  Status EndGroup() override {
    return out_->Emit(key_, {Value::Int(sum_), Value::Int(count_)}, 0);
  }
  Status Finish() override { return Status::OK(); }

 private:
  ShuffleEmitter* out_;
  Row key_;
  int64_t sum_ = 0;
  int64_t count_ = 0;
};

/// Reduce side matching SummingCombiner's protocol.
class SummingReduceTask : public ReduceTask {
 public:
  SummingReduceTask(std::mutex* mutex, std::vector<GroupRecord>* sink)
      : mutex_(mutex), sink_(sink) {}

  Status StartGroup(const Row& key) override {
    current_ = GroupRecord{key[0].AsInt()};
    return Status::OK();
  }
  Status Reduce(const Row&, const Row& value, int) override {
    current_.sum += value[0].AsInt();
    current_.count += value.size() > 1 ? value[1].AsInt() : 1;
    return Status::OK();
  }
  Status EndGroup() override {
    std::lock_guard<std::mutex> lock(*mutex_);
    sink_->push_back(current_);
    return Status::OK();
  }
  Status Finish() override { return Status::OK(); }

 private:
  std::mutex* mutex_;
  std::vector<GroupRecord>* sink_;
  GroupRecord current_{0};
};

TEST(EngineTest, CombinerPreservesOutputAndCutsShuffledBytes) {
  // Run the identical job with and without a combiner: reduce output must
  // match exactly, shuffled bytes must strictly drop (each map task emits
  // ~125 records per key, which the combiner folds to 1).
  std::map<int64_t, GroupRecord> results[2];
  JobCounters counters[2];
  for (int use_combiner = 0; use_combiner < 2; ++use_combiner) {
    dfs::FileSystem fs;
    Engine engine(&fs, EngineOptions{4, 0});
    JobConfig job;
    job.name = "combined-sum";
    for (int s = 0; s < 8; ++s) {
      job.splits.push_back({"", static_cast<uint64_t>(s) * 1000, 1000, -1, 0});
    }
    job.num_reducers = 3;
    job.map_factory = [] { return std::make_unique<ModuloMapTask>(8); };
    std::mutex mutex;
    std::vector<GroupRecord> groups;
    job.reduce_factory = [&](int, int) {
      return std::make_unique<SummingReduceTask>(&mutex, &groups);
    };
    if (use_combiner) {
      job.combiner_factory = [](ShuffleEmitter* out) {
        return std::make_unique<SummingCombiner>(out);
      };
    }
    ASSERT_TRUE(engine.RunJob(job, &counters[use_combiner]).ok());
    for (const GroupRecord& g : groups) {
      ASSERT_EQ(results[use_combiner].count(g.key), 0u);
      results[use_combiner][g.key] = g;
    }
  }

  ASSERT_EQ(results[0].size(), 8u);
  ASSERT_EQ(results[1].size(), 8u);
  for (const auto& [key, g] : results[0]) {
    ASSERT_EQ(results[1].count(key), 1u);
    EXPECT_EQ(results[1][key].sum, g.sum) << "key " << key;
    EXPECT_EQ(results[1][key].count, g.count) << "key " << key;
  }
  // Map output (pre-combine) is identical; the wire traffic is not.
  EXPECT_EQ(counters[0].map_output_records.load(),
            counters[1].map_output_records.load());
  EXPECT_LT(counters[1].shuffled_bytes.load(),
            counters[0].shuffled_bytes.load());
  EXPECT_EQ(counters[0].combine_input_records.load(), 0u);
  EXPECT_EQ(counters[1].combine_input_records.load(), 8000u);
  // 8 tasks x 8 keys = 64 combined records, one per (task, key).
  EXPECT_EQ(counters[1].combine_output_records.load(), 64u);
  EXPECT_EQ(counters[1].reduce_input_records.load(), 64u);
}

/// Map task for the merge-ordering property test: regenerates a
/// deterministic slice of the random workload from its split offset.
struct PropertyRecord {
  Row key;
  Row value;
  int tag;
};

std::vector<PropertyRecord> MakePropertyRecords(uint64_t seed, size_t count) {
  Random rng(seed);
  std::vector<PropertyRecord> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Row key = {Value::Int(rng.Range(0, 40)),
               Value::String(rng.NextString(2))};
    records.push_back({std::move(key),
                       {Value::Int(static_cast<int64_t>(i))},
                       static_cast<int>(rng.Uniform(3))});
  }
  return records;
}

class PropertyMapTask : public MapTask {
 public:
  Status Run(const InputSplit& split, int, int,
             ShuffleEmitter* emitter) override {
    auto records = MakePropertyRecords(split.offset, split.length);
    for (auto& record : records) {
      MINIHIVE_RETURN_IF_ERROR(emitter->Emit(
          std::move(record.key), std::move(record.value), record.tag));
    }
    return Status::OK();
  }
};

/// Collects each partition's (key, tag) arrival sequence.
struct KeyTag {
  Row key;
  int tag;
};

class SequenceReduceTask : public ReduceTask {
 public:
  SequenceReduceTask(std::mutex* mutex,
                     std::map<int, std::vector<KeyTag>>* sink, int partition)
      : mutex_(mutex), sink_(sink), partition_(partition) {}

  Status StartGroup(const Row&) override { return Status::OK(); }
  Status Reduce(const Row& key, const Row&, int tag) override {
    std::lock_guard<std::mutex> lock(*mutex_);
    (*sink_)[partition_].push_back({key, tag});
    return Status::OK();
  }
  Status EndGroup() override { return Status::OK(); }
  Status Finish() override { return Status::OK(); }

 private:
  std::mutex* mutex_;
  std::map<int, std::vector<KeyTag>>* sink_;
  int partition_;
};

TEST(EngineTest, KWayMergeMatchesFullSortOrdering) {
  // Property: for random keys, mixed per-column sort directions, and tag
  // tie-breaks, the merged stream each reducer sees must equal the old
  // full-sort of its partition.
  const std::vector<std::vector<bool>> directions = {
      {}, {false}, {true, false}, {false, true}};
  for (const std::vector<bool>& ascending : directions) {
    const int kReducers = 3;
    const int kSplits = 7;
    const uint64_t kRecordsPerSplit = 200;

    dfs::FileSystem fs;
    Engine engine(&fs, EngineOptions{4, 0});
    JobConfig job;
    job.name = "merge-property";
    for (int s = 0; s < kSplits; ++s) {
      job.splits.push_back(
          {"", static_cast<uint64_t>(s + 1) * 7919, kRecordsPerSplit, -1, 0});
    }
    job.num_reducers = kReducers;
    job.sort_ascending = ascending;
    job.map_factory = [] { return std::make_unique<PropertyMapTask>(); };
    std::mutex mutex;
    std::map<int, std::vector<KeyTag>> merged;
    job.reduce_factory = [&](int partition, int) {
      return std::make_unique<SequenceReduceTask>(&mutex, &merged, partition);
    };
    JobCounters counters;
    ASSERT_TRUE(engine.RunJob(job, &counters).ok());

    // Reference: regenerate the workload, partition it the same way, and
    // full-sort each partition by (key honouring direction, tag).
    std::map<int, std::vector<KeyTag>> reference;
    for (int s = 0; s < kSplits; ++s) {
      auto records = MakePropertyRecords(
          static_cast<uint64_t>(s + 1) * 7919, kRecordsPerSplit);
      for (const auto& record : records) {
        int partition =
            static_cast<int>(HashRowAllCols(record.key) % kReducers);
        reference[partition].push_back({record.key, record.tag});
      }
    }
    auto less = [&ascending](const KeyTag& a, const KeyTag& b) {
      for (size_t i = 0; i < a.key.size(); ++i) {
        int c = a.key[i].Compare(b.key[i]);
        if (c != 0) {
          bool asc = i >= ascending.size() || ascending[i];
          return asc ? c < 0 : c > 0;
        }
      }
      return a.tag < b.tag;
    };
    for (auto& [partition, sequence] : reference) {
      std::stable_sort(sequence.begin(), sequence.end(), less);
    }

    for (int partition = 0; partition < kReducers; ++partition) {
      const auto& got = merged[partition];
      const auto& want = reference[partition];
      ASSERT_EQ(got.size(), want.size()) << "partition " << partition;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].key[0].AsInt(), want[i].key[0].AsInt())
            << "partition " << partition << " position " << i;
        ASSERT_EQ(got[i].key[1].AsString(), want[i].key[1].AsString())
            << "partition " << partition << " position " << i;
        ASSERT_EQ(got[i].tag, want[i].tag)
            << "partition " << partition << " position " << i;
      }
    }
    EXPECT_EQ(counters.reduce_input_records.load(),
              static_cast<uint64_t>(kSplits) * kRecordsPerSplit);
  }
}

/// Map task that fails its first `failures` attempts per task, then behaves
/// like ModuloMapTask. Exercises the engine's per-attempt retry loop.
class FlakyMapTask : public MapTask {
 public:
  FlakyMapTask(int buckets, int failures) : inner_(buckets),
                                            failures_(failures) {}
  Status Run(const InputSplit& split, int task_index, int attempt,
             ShuffleEmitter* emitter) override {
    if (attempt < failures_) {
      // Emit some records first so the engine must discard the partial
      // attempt's counters and shuffle output.
      MINIHIVE_RETURN_IF_ERROR(
          emitter->Emit({Value::Int(0)}, {Value::Int(-1)}, 0));
      return Status::IoError("injected flake on attempt " +
                             std::to_string(attempt));
    }
    return inner_.Run(split, task_index, attempt, emitter);
  }

 private:
  ModuloMapTask inner_;
  int failures_;
};

TEST(EngineTest, FlakyMapTaskSucceedsOnRetryWithExactCounters) {
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{4, 0});
  JobConfig job;
  job.name = "flaky-maps";
  for (int s = 0; s < 6; ++s) {
    job.splits.push_back({"", static_cast<uint64_t>(s) * 1000, 1000, -1, 0});
  }
  job.num_reducers = 2;
  job.max_task_attempts = 3;
  job.map_factory = [] { return std::make_unique<FlakyMapTask>(97, 2); };
  std::mutex mutex;
  std::vector<GroupRecord> groups;
  job.reduce_factory = [&](int, int) {
    return std::make_unique<CollectingReduceTask>(&mutex, &groups);
  };
  JobCounters counters;
  ASSERT_TRUE(engine.RunJob(job, &counters).ok());

  // Failed attempts must not leak records into the shuffle or the counters:
  // the totals are exactly those of a fault-free run.
  EXPECT_EQ(counters.map_output_records.load(), 6000u);
  EXPECT_EQ(counters.reduce_input_records.load(), 6000u);
  EXPECT_EQ(counters.map_task_failures.load(), 12u);  // 6 tasks x 2 flakes.
  EXPECT_EQ(counters.reduce_task_failures.load(), 0u);
  int64_t total = 0;
  for (const GroupRecord& g : groups) total += g.sum;
  EXPECT_EQ(total, 5999LL * 6000 / 2);
}

TEST(EngineTest, MapAttemptsExhaustedFailsWithLastError) {
  class AlwaysFailingMapTask : public MapTask {
   public:
    Status Run(const InputSplit&, int, int, ShuffleEmitter*) override {
      return Status::IoError("disk on fire");
    }
  };
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{1, 0});
  JobConfig job;
  job.splits.push_back({"", 0, 10, -1, 0});
  job.num_reducers = 1;
  job.max_task_attempts = 3;
  job.map_factory = [] { return std::make_unique<AlwaysFailingMapTask>(); };
  job.reduce_factory = [](int, int) {
    std::abort();  // Unreachable: the map phase never succeeds.
    return std::unique_ptr<ReduceTask>();
  };
  JobCounters counters;
  Status status = engine.RunJob(job, &counters);
  ASSERT_TRUE(status.IsIoError()) << status.ToString();
  // The error identifies the task, the attempt budget, and the root cause.
  EXPECT_NE(status.ToString().find("after 3 attempts"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("disk on fire"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(counters.map_task_failures.load(), 3u);
}

TEST(EngineTest, FlakyReduceTaskRetriesAgainstIntactRuns) {
  // Reduce attempt 0 consumes the whole merged stream and then fails; the
  // retry must see the identical stream (the engine may not release map
  // runs until an attempt succeeds).
  class FlakyReduceTask : public ReduceTask {
   public:
    FlakyReduceTask(std::mutex* mutex, std::vector<GroupRecord>* sink,
                    int attempt)
        : inner_(mutex, sink), attempt_(attempt) {}
    Status StartGroup(const Row& key) override {
      return attempt_ == 0 ? Status::OK() : inner_.StartGroup(key);
    }
    Status Reduce(const Row& key, const Row& value, int tag) override {
      return attempt_ == 0 ? Status::OK() : inner_.Reduce(key, value, tag);
    }
    Status EndGroup() override {
      return attempt_ == 0 ? Status::OK() : inner_.EndGroup();
    }
    Status Finish() override {
      if (attempt_ == 0) return Status::IoError("reduce flake");
      return inner_.Finish();
    }

   private:
    SummingReduceTask inner_;
    int attempt_;
  };
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{2, 0});
  JobConfig job;
  for (int s = 0; s < 4; ++s) {
    job.splits.push_back({"", static_cast<uint64_t>(s) * 500, 500, -1, 0});
  }
  job.num_reducers = 2;
  job.max_task_attempts = 2;
  job.map_factory = [] { return std::make_unique<ModuloMapTask>(10); };
  std::mutex mutex;
  std::vector<GroupRecord> groups;
  job.reduce_factory = [&](int, int attempt) {
    return std::make_unique<FlakyReduceTask>(&mutex, &groups, attempt);
  };
  JobCounters counters;
  ASSERT_TRUE(engine.RunJob(job, &counters).ok());
  EXPECT_EQ(counters.reduce_task_failures.load(), 2u);  // One per partition.
  // Only the successful attempts' consumption is counted.
  EXPECT_EQ(counters.reduce_input_records.load(), 2000u);
  int64_t count = 0;
  for (const GroupRecord& g : groups) count += g.count;
  EXPECT_EQ(count, 2000);
}

TEST(EngineTest, CommitAndAbortHooksFirePerAttempt) {
  struct Event {
    TaskKind kind;
    int index;
    int attempt;
    bool committed;
  };
  std::mutex mutex;
  std::vector<Event> events;
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{2, 0});
  JobConfig job;
  for (int s = 0; s < 3; ++s) {
    job.splits.push_back({"", static_cast<uint64_t>(s) * 100, 100, -1, 0});
  }
  job.num_reducers = 1;
  job.max_task_attempts = 2;
  job.map_factory = [] { return std::make_unique<FlakyMapTask>(5, 1); };
  std::vector<GroupRecord> groups;
  job.reduce_factory = [&](int, int) {
    return std::make_unique<SummingReduceTask>(&mutex, &groups);
  };
  job.commit_task = [&](TaskKind kind, int index, int attempt) {
    std::lock_guard<std::mutex> lock(mutex);
    events.push_back({kind, index, attempt, true});
    return Status::OK();
  };
  job.abort_task = [&](TaskKind kind, int index, int attempt) {
    std::lock_guard<std::mutex> lock(mutex);
    events.push_back({kind, index, attempt, false});
  };
  JobCounters counters;
  ASSERT_TRUE(engine.RunJob(job, &counters).ok());

  int map_commits = 0, map_aborts = 0, reduce_commits = 0, reduce_aborts = 0;
  for (const Event& e : events) {
    if (e.kind == TaskKind::kMap) {
      if (e.committed) {
        ++map_commits;
        EXPECT_EQ(e.attempt, 1) << "map " << e.index;
      } else {
        ++map_aborts;
        EXPECT_EQ(e.attempt, 0) << "map " << e.index;
      }
    } else {
      (e.committed ? reduce_commits : reduce_aborts)++;
    }
  }
  EXPECT_EQ(map_commits, 3);   // Every map commits exactly once...
  EXPECT_EQ(map_aborts, 3);    // ...after exactly one aborted attempt.
  EXPECT_EQ(reduce_commits, 1);
  EXPECT_EQ(reduce_aborts, 0);
}

TEST(EngineTest, FailingCommitHookFailsTheAttempt) {
  // A commit that cannot promote its outputs must count as a failed attempt
  // (and be retried like any other failure).
  std::atomic<int> commit_calls{0};
  dfs::FileSystem fs;
  Engine engine(&fs, EngineOptions{1, 0});
  JobConfig job;
  job.splits.push_back({"", 0, 10, -1, 0});
  job.num_reducers = 0;
  job.max_task_attempts = 2;
  job.map_factory = [] { return std::make_unique<ModuloMapTask>(5); };
  job.commit_task = [&](TaskKind, int, int) {
    return commit_calls.fetch_add(1) == 0
               ? Status::IoError("rename lost a race")
               : Status::OK();
  };
  JobCounters counters;
  ASSERT_TRUE(engine.RunJob(job, &counters).ok());
  EXPECT_EQ(commit_calls.load(), 2);
  EXPECT_EQ(counters.map_task_failures.load(), 1u);
}

TEST(EstimateRowBytesTest, GrowsWithContent) {
  Row small = {Value::Int(1)};
  Row big = {Value::Int(1), Value::String(std::string(100, 'x')),
             Value::Double(1.5)};
  EXPECT_LT(EstimateRowBytes(small), EstimateRowBytes(big));
  EXPECT_GE(EstimateRowBytes(big), 100u);
}

}  // namespace
}  // namespace minihive::mr
