#include "exec/operators.h"

#include <gtest/gtest.h>

#include "exec/expr.h"

namespace minihive::exec {
namespace {

/// Terminal operator capturing everything pushed into it.
class SinkOperator : public Operator {
 public:
  SinkOperator() : Operator(&desc_) { desc_.kind = OpKind::kSelect; }
  Status DoProcess(const Row& row, int tag) override {
    rows.push_back(row);
    tags.push_back(tag);
    return Status::OK();
  }
  std::vector<Row> rows;
  std::vector<int> tags;

 private:
  OpDesc desc_;
};

/// Builds a runtime tree from a single-root plan and attaches a sink to the
/// given leaf desc by constructing the tree manually.
struct Harness {
  OperatorArena arena;
  TaskContext ctx;
  SinkOperator sink;

  Operator* Build(const OpDescPtr& root) {
    auto result = BuildOperatorTree(root.get(), &arena);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    Operator* op = *result;
    AttachSink(op);
    EXPECT_TRUE(op->Init(&ctx).ok());
    return op;
  }

  /// Attaches the sink below the deepest operator chain (runtime trees here
  /// are all chains or end at ops with no children).
  void AttachSink(Operator* op) { op->AddChild(&sink); }
};

TEST(FilterOperatorTest, SqlTernaryLogic) {
  OpDescPtr filter = MakeOp(OpKind::kFilter);
  // predicate: c0 > 10 (NULL rows must NOT pass).
  filter->predicate =
      Expr::Binary(ExprKind::kGt, Expr::Column(0, TypeKind::kBigInt),
                   Expr::Literal(Value::Int(10), TypeKind::kBigInt));
  Harness h;
  Operator* op = h.Build(filter);
  ASSERT_TRUE(op->Process({Value::Int(11)}, 0).ok());
  ASSERT_TRUE(op->Process({Value::Int(10)}, 0).ok());
  ASSERT_TRUE(op->Process({Value::Null()}, 0).ok());
  ASSERT_TRUE(op->Process({Value::Int(99)}, 0).ok());
  ASSERT_EQ(h.sink.rows.size(), 2u);
  EXPECT_EQ(h.sink.rows[0][0].AsInt(), 11);
  EXPECT_EQ(h.sink.rows[1][0].AsInt(), 99);
}

TEST(SelectOperatorTest, ComputesProjections) {
  OpDescPtr select = MakeOp(OpKind::kSelect);
  select->projections = {
      Expr::Binary(ExprKind::kMul, Expr::Column(0, TypeKind::kBigInt),
                   Expr::Literal(Value::Int(2), TypeKind::kBigInt)),
      Expr::Column(1, TypeKind::kString),
  };
  Harness h;
  Operator* op = h.Build(select);
  ASSERT_TRUE(op->Process({Value::Int(21), Value::String("x")}, 0).ok());
  ASSERT_EQ(h.sink.rows.size(), 1u);
  EXPECT_EQ(h.sink.rows[0][0].AsInt(), 42);
  EXPECT_EQ(h.sink.rows[0][1].AsString(), "x");
}

TEST(LimitOperatorTest, StopsForwarding) {
  OpDescPtr limit = MakeOp(OpKind::kLimit);
  limit->limit = 2;
  Harness h;
  Operator* op = h.Build(limit);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(op->Process({Value::Int(i)}, 0).ok());
  }
  EXPECT_EQ(h.sink.rows.size(), 2u);
}

TEST(GroupByOperatorTest, HashModePartials) {
  OpDescPtr gby = MakeOp(OpKind::kGroupBy);
  gby->group_by_mode = GroupByMode::kHash;
  gby->group_keys = {Expr::Column(0, TypeKind::kString)};
  gby->aggs.push_back({AggKind::kCountStar, nullptr});
  gby->aggs.push_back({AggKind::kSum, Expr::Column(1, TypeKind::kBigInt)});
  gby->aggs.push_back({AggKind::kAvg, Expr::Column(1, TypeKind::kBigInt)});
  Harness h;
  Operator* op = h.Build(gby);
  ASSERT_TRUE(op->Process({Value::String("a"), Value::Int(1)}, 0).ok());
  ASSERT_TRUE(op->Process({Value::String("b"), Value::Int(10)}, 0).ok());
  ASSERT_TRUE(op->Process({Value::String("a"), Value::Int(2)}, 0).ok());
  ASSERT_TRUE(op->Finish().ok());
  ASSERT_EQ(h.sink.rows.size(), 2u);
  for (const Row& row : h.sink.rows) {
    // Layout: key, count, sum, avg-sum, avg-count (partial arity 2).
    ASSERT_EQ(row.size(), 5u);
    if (row[0].AsString() == "a") {
      EXPECT_EQ(row[1].AsInt(), 2);
      EXPECT_EQ(row[2].AsInt(), 3);
      EXPECT_DOUBLE_EQ(row[3].AsDouble(), 3.0);
      EXPECT_EQ(row[4].AsInt(), 2);
    } else {
      EXPECT_EQ(row[1].AsInt(), 1);
      EXPECT_EQ(row[2].AsInt(), 10);
    }
  }
}

TEST(GroupByOperatorTest, MergePartialFinalizesAvg) {
  OpDescPtr gby = MakeOp(OpKind::kGroupBy);
  gby->group_by_mode = GroupByMode::kMergePartial;
  gby->partial_offset = 1;
  gby->aggs.push_back({AggKind::kCountStar, nullptr});
  gby->aggs.push_back({AggKind::kAvg, nullptr});
  Harness h;
  Operator* op = h.Build(gby);
  // Two partials for the same group: counts 2 & 3, avg partial (sum,count).
  ASSERT_TRUE(op->StartGroup().ok());
  ASSERT_TRUE(op->Process({Value::String("k"), Value::Int(2),
                           Value::Double(10.0), Value::Int(2)}, 0).ok());
  ASSERT_TRUE(op->Process({Value::String("k"), Value::Int(3),
                           Value::Double(20.0), Value::Int(3)}, 0).ok());
  ASSERT_TRUE(op->EndGroup().ok());
  ASSERT_EQ(h.sink.rows.size(), 1u);
  const Row& row = h.sink.rows[0];
  EXPECT_EQ(row[0].AsString(), "k");
  EXPECT_EQ(row[1].AsInt(), 5);
  EXPECT_DOUBLE_EQ(row[2].AsDouble(), 6.0);  // (10+20)/(2+3).
}

TEST(JoinOperatorTest, InnerJoinCrossProduct) {
  OpDescPtr join = MakeOp(OpKind::kJoin);
  join->join_num_inputs = 2;
  join->join_key_width = 1;
  join->join_value_widths = {1, 1};
  join->join_sides = {JoinSideKind::kInner, JoinSideKind::kInner};
  Harness h;
  Operator* op = h.Build(join);
  ASSERT_TRUE(op->StartGroup().ok());
  // Rows are key-prefixed: [key, value].
  ASSERT_TRUE(op->Process({Value::Int(7), Value::String("l1")}, 0).ok());
  ASSERT_TRUE(op->Process({Value::Int(7), Value::String("l2")}, 0).ok());
  ASSERT_TRUE(op->Process({Value::Int(7), Value::String("r1")}, 1).ok());
  ASSERT_TRUE(op->EndGroup().ok());
  ASSERT_EQ(h.sink.rows.size(), 2u);  // 2 x 1 combinations.
  for (const Row& row : h.sink.rows) {
    EXPECT_EQ(row[0].AsInt(), 7);
    EXPECT_EQ(row[2].AsString(), "r1");
  }
}

TEST(JoinOperatorTest, InnerJoinEmptySideEmitsNothing) {
  OpDescPtr join = MakeOp(OpKind::kJoin);
  join->join_num_inputs = 2;
  join->join_key_width = 1;
  join->join_value_widths = {1, 1};
  join->join_sides = {JoinSideKind::kInner, JoinSideKind::kInner};
  Harness h;
  Operator* op = h.Build(join);
  ASSERT_TRUE(op->StartGroup().ok());
  ASSERT_TRUE(op->Process({Value::Int(7), Value::String("l1")}, 0).ok());
  ASSERT_TRUE(op->EndGroup().ok());
  EXPECT_TRUE(h.sink.rows.empty());
}

TEST(JoinOperatorTest, LeftOuterPadsNulls) {
  OpDescPtr join = MakeOp(OpKind::kJoin);
  join->join_num_inputs = 2;
  join->join_key_width = 1;
  join->join_value_widths = {1, 2};
  join->join_sides = {JoinSideKind::kInner, JoinSideKind::kLeftOuter};
  Harness h;
  Operator* op = h.Build(join);
  ASSERT_TRUE(op->StartGroup().ok());
  ASSERT_TRUE(op->Process({Value::Int(1), Value::String("left")}, 0).ok());
  ASSERT_TRUE(op->EndGroup().ok());
  ASSERT_EQ(h.sink.rows.size(), 1u);
  const Row& row = h.sink.rows[0];
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1].AsString(), "left");
  EXPECT_TRUE(row[2].is_null());
  EXPECT_TRUE(row[3].is_null());
}

TEST(JoinOperatorTest, ResidualFilterApplies) {
  OpDescPtr join = MakeOp(OpKind::kJoin);
  join->join_num_inputs = 2;
  join->join_key_width = 1;
  join->join_value_widths = {1, 1};
  join->join_sides = {JoinSideKind::kInner, JoinSideKind::kInner};
  // Residual over the joined layout [key, lv, rv]: lv < rv.
  join->join_residual =
      Expr::Binary(ExprKind::kLt, Expr::Column(1, TypeKind::kBigInt),
                   Expr::Column(2, TypeKind::kBigInt));
  Harness h;
  Operator* op = h.Build(join);
  ASSERT_TRUE(op->StartGroup().ok());
  ASSERT_TRUE(op->Process({Value::Int(1), Value::Int(5)}, 0).ok());
  ASSERT_TRUE(op->Process({Value::Int(1), Value::Int(3)}, 1).ok());
  ASSERT_TRUE(op->Process({Value::Int(1), Value::Int(9)}, 1).ok());
  ASSERT_TRUE(op->EndGroup().ok());
  ASSERT_EQ(h.sink.rows.size(), 1u);
  EXPECT_EQ(h.sink.rows[0][2].AsInt(), 9);
}

TEST(SerializeKeyTest, NumericFamiliesCollate) {
  EXPECT_EQ(SerializeKey({Value::Int(3)}), SerializeKey({Value::Double(3.0)}));
  EXPECT_NE(SerializeKey({Value::Int(3)}), SerializeKey({Value::Int(4)}));
  EXPECT_NE(SerializeKey({Value::Null()}), SerializeKey({Value::Int(0)}));
  EXPECT_NE(SerializeKey({Value::String("3")}), SerializeKey({Value::Int(3)}));
}

}  // namespace
}  // namespace minihive::exec
