/// Mutable managed tables end-to-end: CREATE TABLE ... PARTITIONED BY,
/// INSERT INTO visibility across sessions, unique-key upsert, DELETE via
/// merge-on-read bitmaps (row and vectorized paths byte-identical), the
/// background compactor's equivalence + tombstone protocol, and fault
/// sweeps over the insert-commit and compaction paths — a failed commit
/// must never leave a partially visible table.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32.h"
#include "common/delete_bitmap.h"
#include "common/fault.h"
#include "common/telemetry.h"
#include "ql/compaction.h"
#include "ql/driver.h"
#include "ql/table_ops.h"

namespace minihive::ql {
namespace {

std::vector<std::string> Canonicalize(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class MutableTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dfs::FileSystemOptions fs_options;
    fs_options.block_size = 256 * 1024;
    fs_ = std::make_unique<dfs::FileSystem>(fs_options);
    catalog_ = std::make_unique<Catalog>(fs_.get());
  }

  void TearDown() override { fs_->set_fault_injector(nullptr); }

  DriverOptions Options(bool vectorized) {
    DriverOptions options;
    options.num_workers = 2;
    options.vectorized_execution = vectorized;
    return options;
  }

  /// Each call is "another session": a fresh Driver on the shared catalog.
  QueryResult Exec(const std::string& sql, bool vectorized = false) {
    Driver driver(fs_.get(), catalog_.get(), Options(vectorized));
    auto result = driver.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? *result : QueryResult();
  }

  Result<QueryResult> TryExec(const std::string& sql) {
    Driver driver(fs_.get(), catalog_.get(), Options(false));
    return driver.Execute(sql);
  }

  size_t TableFileCount(const std::string& name) {
    auto table = catalog_->GetTable(name);
    EXPECT_TRUE(table.ok());
    return catalog_->TableFiles(**table).size();
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(MutableTableTest, InsertIsVisibleToOtherSessions) {
  Exec("CREATE TABLE events (id INT, region STRING, amount DOUBLE) "
       "PARTITIONED BY (region)");
  QueryResult insert = Exec(
      "INSERT INTO events VALUES (1, 'eu', 10.5), (2, 'us', 20.0), "
      "(3, 'eu', 1.25)");
  EXPECT_EQ(insert.rows_affected, 3u);

  // A different Driver (session) sees the committed rows immediately.
  QueryResult select = Exec("SELECT id, region, amount FROM events");
  EXPECT_EQ(select.rows.size(), 3u);

  // Hive-style directory layout: one file per touched partition.
  EXPECT_EQ(fs_->List("/warehouse/events/region=eu/part-").size(), 1u);
  EXPECT_EQ(fs_->List("/warehouse/events/region=us/part-").size(), 1u);
  // The commit protocol leaves no attempt files behind.
  EXPECT_TRUE(fs_->List("/warehouse/events/region=eu/attempt-").empty());
}

TEST_F(MutableTableTest, PartitionPruningSkipsFiles) {
  Exec("CREATE TABLE sales (id INT, region STRING, amount DOUBLE) "
       "PARTITIONED BY (region)");
  Exec("INSERT INTO sales VALUES (1, 'eu', 1.0), (2, 'us', 2.0), "
       "(3, 'ap', 3.0)");
  Exec("INSERT INTO sales VALUES (4, 'eu', 4.0), (5, 'us', 5.0)");

  telemetry::Counter* pruned = telemetry::MetricsRegistry::Global().GetCounter(
      "ql.partition_files_pruned");
  const uint64_t before = pruned->value();
  QueryResult result =
      Exec("SELECT id, amount FROM sales WHERE region = 'eu'");
  EXPECT_EQ(result.rows.size(), 2u);
  // Three non-eu files (us x2, ap x1) never reached the splitter.
  EXPECT_EQ(pruned->value() - before, 3u);
}

TEST_F(MutableTableTest, UpsertLatestWriteWins) {
  Exec("CREATE TABLE kv (k INT, v STRING) UNIQUE KEY (k)");
  Exec("INSERT INTO kv VALUES (1, 'a'), (2, 'b')");
  Exec("INSERT INTO kv VALUES (1, 'a2')");
  // Duplicate key inside one statement: the last tuple wins.
  Exec("INSERT INTO kv VALUES (3, 'x'), (3, 'y')");

  QueryResult result = Exec("SELECT k, v FROM kv");
  EXPECT_EQ(Canonicalize(result.rows),
            Canonicalize({{Value::Int(1), Value::String("a2")},
                          {Value::Int(2), Value::String("b")},
                          {Value::Int(3), Value::String("y")}}));
}

TEST_F(MutableTableTest, DeleteRowAndVectorizedAreByteIdentical) {
  Exec("CREATE TABLE t (k INT, grp INT, amount DOUBLE) UNIQUE KEY (k)");
  std::string values;
  for (int i = 0; i < 500; ++i) {
    if (!values.empty()) values += ", ";
    values += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ", " +
              std::to_string(i) + ".5)";
  }
  Exec("INSERT INTO t VALUES " + values);
  QueryResult del = Exec("DELETE FROM t WHERE k < 100");
  EXPECT_EQ(del.rows_affected, 100u);

  const std::string sql =
      "SELECT grp, COUNT(*) AS cnt, SUM(amount) AS total FROM t GROUP BY grp";
  QueryResult row_mode = Exec(sql, /*vectorized=*/false);
  QueryResult vec_mode = Exec(sql, /*vectorized=*/true);
  EXPECT_FALSE(row_mode.rows.empty());
  EXPECT_EQ(Canonicalize(row_mode.rows), Canonicalize(vec_mode.rows));

  // COUNT(*) must see deletions too — the stats-only answer path has to
  // stand down while delete debt is outstanding.
  QueryResult count = Exec("SELECT COUNT(*) AS n FROM t");
  ASSERT_EQ(count.rows.size(), 1u);
  EXPECT_EQ(count.rows[0][0].AsInt(), 400);
}

TEST_F(MutableTableTest, DeleteByUniqueKeyThenReinsert) {
  Exec("CREATE TABLE kv (k INT, v STRING) UNIQUE KEY (k)");
  Exec("INSERT INTO kv VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  QueryResult del = Exec("DELETE FROM kv WHERE k = 2");
  EXPECT_EQ(del.rows_affected, 1u);
  // The key is free again: re-insert must not upsert a ghost.
  Exec("INSERT INTO kv VALUES (2, 'b2')");
  QueryResult result = Exec("SELECT k, v FROM kv");
  EXPECT_EQ(Canonicalize(result.rows),
            Canonicalize({{Value::Int(1), Value::String("a")},
                          {Value::Int(2), Value::String("b2")},
                          {Value::Int(3), Value::String("c")}}));
}

TEST_F(MutableTableTest, ConcurrentInsertsFromTwoSessions) {
  Exec("CREATE TABLE log (id INT, session STRING)");
  auto insert_many = [this](const std::string& tag, int base) {
    for (int i = 0; i < 10; ++i) {
      Driver driver(fs_.get(), catalog_.get(), Options(false));
      auto r = driver.Execute("INSERT INTO log VALUES (" +
                              std::to_string(base + i) + ", '" + tag + "')");
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
  };
  std::thread a([&] { insert_many("a", 0); });
  std::thread b([&] { insert_many("b", 1000); });
  a.join();
  b.join();
  QueryResult result = Exec("SELECT COUNT(*) AS n FROM log");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt(), 20);
}

TEST_F(MutableTableTest, CompactionPreservesResultsAndShrinksFileCount) {
  Exec("CREATE TABLE t (k INT, grp INT, amount DOUBLE) UNIQUE KEY (k)");
  // Many tiny commits -> many small files (the small-file problem).
  for (int batch = 0; batch < 8; ++batch) {
    std::string values;
    for (int i = 0; i < 50; ++i) {
      const int k = batch * 50 + i;
      if (!values.empty()) values += ", ";
      values += "(" + std::to_string(k) + ", " + std::to_string(k % 5) +
                ", " + std::to_string(k) + ".25)";
    }
    Exec("INSERT INTO t VALUES " + values);
  }
  Exec("DELETE FROM t WHERE k < 40");
  const std::string sql =
      "SELECT grp, COUNT(*) AS cnt, SUM(amount) AS total FROM t GROUP BY grp";
  const std::vector<std::string> golden = Canonicalize(Exec(sql).rows);
  const size_t files_before = TableFileCount("t");
  ASSERT_EQ(files_before, 8u);

  CompactionOptions copts;
  copts.small_file_bytes = 16 * 1024 * 1024;  // Everything here is small.
  CompactionManager compactor(fs_.get(), catalog_.get(), copts);
  uint64_t tasks = 0;
  for (int sweep = 0; sweep < 10; ++sweep) {
    auto stats = compactor.RunOnce();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    tasks += stats->tasks_run;
    if (stats->tasks_run == 0) break;
    // Every intermediate state must answer identically.
    EXPECT_EQ(Canonicalize(Exec(sql).rows), golden);
  }
  EXPECT_GT(tasks, 0u);
  EXPECT_LT(TableFileCount("t"), files_before);
  EXPECT_EQ(Canonicalize(Exec(sql).rows), golden);
  // Vectorized agreement survives compaction as well.
  EXPECT_EQ(Canonicalize(Exec(sql, /*vectorized=*/true).rows), golden);

  // Replaced files are tombstoned one sweep, then physically deleted.
  auto final_sweep = compactor.RunOnce();
  ASSERT_TRUE(final_sweep.ok());
  auto table = catalog_->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->state->tombstones.empty());
  // Upsert after compaction still finds the rewritten row's new location.
  Exec("INSERT INTO t VALUES (100, 0, 0.0)");
  QueryResult count = Exec("SELECT COUNT(*) AS n FROM t");
  ASSERT_EQ(count.rows.size(), 1u);
  EXPECT_EQ(count.rows[0][0].AsInt(), 360);  // 400 - 40 deleted, 100 upserted.
}

TEST_F(MutableTableTest, InsertCommitFaultSweepNeverPartiallyVisible) {
  Exec("CREATE TABLE mut (id INT, grp INT) PARTITIONED BY (grp)");
  int64_t committed = 0;
  int typed_failures = 0;
  uint64_t injected = 0;
  for (int seed = 0; seed < 20; ++seed) {
    FaultConfig config;
    config.seed = static_cast<uint64_t>(seed) * 104729 + 13;
    config.open_error_probability = 0.05;
    config.append_error_probability = 0.02;
    config.close_error_probability = 0.05;
    config.path_filter = "/warehouse/mut";
    FaultInjector injector(config);
    fs_->set_fault_injector(&injector);
    auto result = TryExec("INSERT INTO mut VALUES (" + std::to_string(seed) +
                          ", 0), (" + std::to_string(seed + 1000) + ", 1)");
    fs_->set_fault_injector(nullptr);
    injected += injector.stats().total();
    if (result.ok()) {
      committed += 2;
    } else {
      EXPECT_TRUE(result.status().IsIoError())
          << "seed " << seed << ": " << result.status().ToString();
      ++typed_failures;
    }
    // Atomicity: the table must hold exactly the committed rows — a failed
    // statement contributes nothing, from any session, on either path.
    QueryResult count = Exec("SELECT COUNT(*) AS n FROM mut");
    ASSERT_EQ(count.rows.size(), 1u);
    ASSERT_EQ(count.rows[0][0].AsInt(), committed) << "seed " << seed;
  }
  EXPECT_GT(injected, 0u) << "injector never fired; sweep is vacuous";
  EXPECT_GT(typed_failures, 0) << "no commit ever failed; sweep is vacuous";
  EXPECT_GT(committed, 0) << "every commit failed";
}

TEST_F(MutableTableTest, MidCompactionCrashLeavesSnapshotUntouched) {
  Exec("CREATE TABLE t (k INT, v DOUBLE) UNIQUE KEY (k)");
  for (int batch = 0; batch < 4; ++batch) {
    std::string values;
    for (int i = 0; i < 25; ++i) {
      const int k = batch * 25 + i;
      if (!values.empty()) values += ", ";
      values += "(" + std::to_string(k) + ", " + std::to_string(k) + ".5)";
    }
    Exec("INSERT INTO t VALUES " + values);
  }
  Exec("DELETE FROM t WHERE k < 10");
  const std::string sql = "SELECT k, v FROM t";
  const std::vector<std::string> golden = Canonicalize(Exec(sql).rows);
  const size_t files_before = TableFileCount("t");

  CompactionOptions copts;
  copts.small_file_bytes = 16 * 1024 * 1024;
  CompactionManager compactor(fs_.get(), catalog_.get(), copts);
  int crashed = 0;
  for (int seed = 0; seed < 10; ++seed) {
    FaultConfig config;
    config.seed = static_cast<uint64_t>(seed) * 31 + 7;
    config.append_error_probability = 0.02;
    config.close_error_probability = 0.2;
    config.path_filter = "/warehouse/t";
    FaultInjector injector(config);
    fs_->set_fault_injector(&injector);
    auto stats = compactor.RunOnce();
    fs_->set_fault_injector(nullptr);
    if (!stats.ok()) {
      ++crashed;
      // The failed rewrite must not have touched the manifest: same files,
      // same rows, on both execution paths.
      EXPECT_EQ(TableFileCount("t"), files_before) << "seed " << seed;
      EXPECT_EQ(Canonicalize(Exec(sql).rows), golden) << "seed " << seed;
      EXPECT_EQ(Canonicalize(Exec(sql, /*vectorized=*/true).rows), golden);
    }
  }
  EXPECT_GT(crashed, 0) << "no sweep ever hit a fault; test is vacuous";

  // Fault-free sweeps finish the job; results are unchanged.
  for (int sweep = 0; sweep < 10; ++sweep) {
    auto stats = compactor.RunOnce();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats->tasks_run == 0) break;
  }
  EXPECT_LT(TableFileCount("t"), files_before);
  EXPECT_EQ(Canonicalize(Exec(sql).rows), golden);
}

TEST_F(MutableTableTest, BackgroundCompactionThread) {
  Exec("CREATE TABLE t (k INT, v DOUBLE)");
  for (int batch = 0; batch < 6; ++batch) {
    Exec("INSERT INTO t VALUES (" + std::to_string(batch) + ", 1.5), (" +
         std::to_string(batch + 100) + ", 2.5)");
  }
  const std::string sql = "SELECT COUNT(*) AS n, SUM(v) AS s FROM t";
  const std::vector<std::string> golden = Canonicalize(Exec(sql).rows);

  CompactionOptions copts;
  copts.small_file_bytes = 16 * 1024 * 1024;
  copts.interval_millis = 5;
  CompactionManager compactor(fs_.get(), catalog_.get(), copts);
  compactor.Start();
  // Wait (bounded) until the background sweeps have merged the table.
  for (int i = 0; i < 200 && TableFileCount("t") > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  compactor.Stop();
  EXPECT_LT(TableFileCount("t"), 6u);
  EXPECT_GT(compactor.totals().tasks_run, 0u);
  EXPECT_EQ(Canonicalize(Exec(sql).rows), golden);
}

TEST_F(MutableTableTest, DropTableRemovesEverything) {
  Exec("CREATE TABLE tmp (k INT, grp STRING) PARTITIONED BY (grp)");
  Exec("INSERT INTO tmp VALUES (1, 'a'), (2, 'b')");
  Exec("DELETE FROM tmp WHERE k = 1");
  Exec("DROP TABLE tmp");
  EXPECT_FALSE(catalog_->HasTable("tmp"));
  EXPECT_TRUE(fs_->List("/warehouse/tmp/").empty());
}

TEST_F(MutableTableTest, SidecarDecodeRejectsOversizedRowCount) {
  // A sidecar whose num_rows disagrees with its word payload must be a
  // typed Corruption, not an out-of-bounds IsDeleted() read later: the
  // word count is derived from the buffer, and num_rows must fit it
  // exactly. Valid CRCs make sure the length check itself is what fires.
  auto encode = [](uint64_t num_rows, uint64_t deleted, size_t words) {
    std::string data = "MHDB";
    data.push_back('\x01');
    auto u64 = [&data](uint64_t v) {
      for (int i = 0; i < 8; ++i) data.push_back(static_cast<char>(v >> (8 * i)));
    };
    u64(num_rows);
    u64(deleted);
    for (size_t w = 0; w < words; ++w) u64(0);
    uint32_t crc = Crc32(data);
    for (int i = 0; i < 4; ++i) data.push_back(static_cast<char>(crc >> (8 * i)));
    return data;
  };
  // num_rows so large that ceil(num_rows/64)*8 wraps 64-bit arithmetic.
  auto huge = DeleteBitmap::Decode(encode(~uint64_t{0} - 62, 0, 0));
  ASSERT_FALSE(huge.ok());
  EXPECT_TRUE(huge.status().IsCorruption()) << huge.status().ToString();
  // One word of payload only covers 1..64 rows.
  EXPECT_FALSE(DeleteBitmap::Decode(encode(65, 0, 1)).ok());
  EXPECT_FALSE(DeleteBitmap::Decode(encode(128, 0, 1)).ok());
  // Or claims more rows than any word backs.
  EXPECT_FALSE(DeleteBitmap::Decode(encode(1, 0, 0)).ok());
  // The exact-fit encodings still round-trip.
  EXPECT_TRUE(DeleteBitmap::Decode(encode(64, 0, 1)).ok());
  EXPECT_TRUE(DeleteBitmap::Decode(encode(0, 0, 0)).ok());
  DeleteBitmap bitmap(100);
  bitmap.MarkDeleted(7);
  auto round = DeleteBitmap::Decode(bitmap.Encode());
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->IsDeleted(7));
  EXPECT_EQ(round->deleted_count(), 1u);
}

TEST_F(MutableTableTest, RecoverTableRebuildsSnapshot) {
  // Build a table with everything recovery must cope with: multiple
  // partitions, delete-bitmap sidecars, an upsert whose loser lives in a
  // compacted file, unreaped compaction tombstones (the .r range must
  // suppress them), and orphan attempt files from a "crashed" statement.
  const std::string ddl =
      "CREATE TABLE r (k INT, region STRING, v DOUBLE) "
      "PARTITIONED BY (region) UNIQUE KEY (k)";
  Exec(ddl);
  for (int batch = 0; batch < 4; ++batch) {
    std::string values;
    for (int i = 0; i < 10; ++i) {
      const int k = batch * 10 + i;
      if (!values.empty()) values += ", ";
      values += "(" + std::to_string(k) + ", 'eu', " + std::to_string(k) + ".5)";
    }
    Exec("INSERT INTO r VALUES " + values);
  }
  Exec("INSERT INTO r VALUES (100, 'us', 1.0), (101, 'us', 2.0)");
  Exec("INSERT INTO r VALUES (102, 'us', 3.0)");
  Exec("DELETE FROM r WHERE k = 100");     // Sidecar on a surviving file.
  Exec("INSERT INTO r VALUES (0, 'eu', 999.0)");  // Upsert: k=0 moves.

  // One sweep: merges the eu run, leaves its replaced files tombstoned on
  // disk (reaping is deferred a sweep — exactly the crash window).
  CompactionOptions copts;
  copts.small_file_bytes = 16 * 1024 * 1024;
  CompactionManager compactor(fs_.get(), catalog_.get(), copts);
  auto sweep = compactor.RunOnce();
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  ASSERT_GT(sweep->tasks_run, 0u);
  {
    auto table = catalog_->GetTable("r");
    ASSERT_TRUE(table.ok());
    ASSERT_FALSE((*table)->state->tombstones.empty());
  }

  // Orphans a crashed statement could leave behind.
  for (const std::string& orphan :
       {std::string("/warehouse/r/region=eu/attempt-00000000000000000099"),
        std::string("/warehouse/r/region=us/part-x.del.attempt")}) {
    auto file = fs_->Create(orphan);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("junk").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  const std::string sql = "SELECT k, region, v FROM r";
  const std::vector<std::string> golden = Canonicalize(Exec(sql).rows);

  // "Restart": a fresh catalog over the same DFS. Metadata is not durable,
  // so the caller re-issues the DDL, then recovers from the files alone.
  Catalog recovered_catalog(fs_.get());
  auto exec2 = [&](const std::string& stmt, bool vectorized = false) {
    Driver driver(fs_.get(), &recovered_catalog, Options(vectorized));
    auto result = driver.Execute(stmt);
    EXPECT_TRUE(result.ok()) << stmt << ": " << result.status().ToString();
    return result.ok() ? *result : QueryResult();
  };
  exec2(ddl);
  TableOps ops(fs_.get(), &recovered_catalog);
  auto adopted = ops.RecoverTable("r");
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_GT(*adopted, 0u);

  // Same rows, both engines; deletes stayed deleted, the upsert's loser
  // stayed lost, tombstoned pre-compaction files did not resurrect.
  EXPECT_EQ(Canonicalize(exec2(sql).rows), golden);
  EXPECT_EQ(Canonicalize(exec2(sql, /*vectorized=*/true).rows), golden);
  // Orphans and superseded files are physically gone.
  EXPECT_TRUE(fs_->List("/warehouse/r/region=eu/attempt-").empty());
  EXPECT_FALSE(fs_->Exists("/warehouse/r/region=us/part-x.del.attempt"));

  // The rebuilt key index and sequence counter keep upserts correct.
  QueryResult upsert = exec2("INSERT INTO r VALUES (0, 'eu', -1.0)");
  EXPECT_EQ(upsert.rows_affected, 1u);
  QueryResult k0 = exec2("SELECT v FROM r WHERE k = 0");
  ASSERT_EQ(k0.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(k0.rows[0][0].AsDouble(), -1.0);
  QueryResult count = exec2("SELECT COUNT(*) AS n FROM r");
  ASSERT_EQ(count.rows.size(), 1u);
  EXPECT_EQ(count.rows[0][0].AsInt(), 42);  // 40 eu + (101,102); 100 deleted.
}

TEST_F(MutableTableTest, DropTableRacesWritersAndCompaction) {
  // DROP TABLE while INSERTs run and the background compactor sweeps every
  // millisecond: the copy-based table handles plus the dropped flag must
  // make every interleaving safe (TSan covers the memory side under the
  // `robustness` label), and whatever committed before the drop is deleted
  // with the table — the directory always ends empty.
  CompactionOptions copts;
  copts.small_file_bytes = 16 * 1024 * 1024;
  copts.interval_millis = 1;
  CompactionManager compactor(fs_.get(), catalog_.get(), copts);
  compactor.Start();
  for (int round = 0; round < 10; ++round) {
    Exec("CREATE TABLE race (k INT, v DOUBLE) UNIQUE KEY (k)");
    std::thread inserter([&] {
      for (int i = 0; i < 8; ++i) {
        Driver driver(fs_.get(), catalog_.get(), Options(false));
        // NotFound once the drop wins the race is the expected outcome.
        driver.Execute("INSERT INTO race VALUES (" + std::to_string(i) +
                       ", 1.5), (" + std::to_string(i + 100) + ", 2.5)")
            .status();
      }
    });
    std::thread dropper([&] {
      Driver driver(fs_.get(), catalog_.get(), Options(false));
      driver.Execute("DROP TABLE race").status();
    });
    inserter.join();
    dropper.join();
    EXPECT_FALSE(catalog_->HasTable("race")) << "round " << round;
    EXPECT_TRUE(fs_->List("/warehouse/race/").empty()) << "round " << round;
  }
  compactor.Stop();
}

TEST_F(MutableTableTest, StatementErrorsAreTyped) {
  EXPECT_FALSE(TryExec("INSERT INTO nosuch VALUES (1)").ok());
  Exec("CREATE TABLE t (k INT) ");
  EXPECT_FALSE(TryExec("CREATE TABLE t (k INT)").ok());  // Duplicate.
  EXPECT_FALSE(TryExec("INSERT INTO t VALUES (1, 2)").ok());  // Arity.
  EXPECT_FALSE(TryExec("INSERT INTO t VALUES ('x')").ok());  // Type.
  // Partition and unique-key columns must exist.
  EXPECT_FALSE(
      TryExec("CREATE TABLE bad (k INT) PARTITIONED BY (nope)").ok());
  EXPECT_FALSE(TryExec("CREATE TABLE bad (k INT) UNIQUE KEY (nope)").ok());
  // DML over unmanaged tables is rejected (no manifest to commit into).
  EXPECT_FALSE(TryExec("DELETE FROM nosuch").ok());
}

}  // namespace
}  // namespace minihive::ql
