// End-to-end tests for query profiling: EXPLAIN PROFILE parsing, the span
// tree a profiled query produces (driver -> jobs -> operators), and the
// consistency of the per-operator row counts it reports.

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/random.h"
#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<dfs::FileSystem>();
    catalog_ = std::make_unique<Catalog>(fs_.get());
    std::vector<Row> orders;
    Random rng(7);
    for (int i = 0; i < 3000; ++i) {
      orders.push_back({Value::Int(i), Value::Int(i % 100),
                        Value::Double((i % 50) * 1.5)});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "orders",
                    *TypeDescription::Parse("struct<o_id:bigint,"
                                            "o_custkey:bigint,"
                                            "o_amount:double>"),
                    formats::FormatKind::kTextFile,
                    codec::CompressionKind::kNone, orders, 3)
                    .ok());
  }

  QueryResult MustExecute(Driver* driver, const std::string& sql) {
    auto result = driver->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    if (!result.ok()) return QueryResult();
    return std::move(result).ValueOrDie();
  }

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

// A GROUP BY + ORDER BY query compiles to at least two MapReduce jobs; the
// profile must cover the driver phases, every job and every operator.
TEST_F(ProfileTest, ExplainProfileCoversJobsAndOperators) {
  Driver driver(fs_.get(), catalog_.get());
  QueryResult result = MustExecute(
      &driver,
      "EXPLAIN PROFILE SELECT o_custkey, SUM(o_amount) AS total FROM orders "
      "GROUP BY o_custkey ORDER BY o_custkey");
  ASSERT_GE(result.num_jobs, 2);
  ASSERT_EQ(result.rows.size(), 100u);

  // The rendered tree is returned as the plan text.
  EXPECT_NE(result.plan_text.find("query:"), std::string::npos);
  EXPECT_NE(result.plan_text.find("execute"), std::string::npos);
  EXPECT_NE(result.plan_text.find("job:"), std::string::npos);
  EXPECT_NE(result.plan_text.find("op:"), std::string::npos);

  ASSERT_NE(result.profile, nullptr);
  EXPECT_EQ(driver.LastProfile(), result.profile);

  // Driver phases are children of the query root.
  EXPECT_NE(result.profile->FindDescendant("plan"), nullptr);
  EXPECT_NE(result.profile->FindDescendant("fetch"), nullptr);
  const telemetry::Span* execute = result.profile->FindDescendant("execute");
  ASSERT_NE(execute, nullptr);

  // One job span per compiled job, each carrying operator spans whose
  // rows_in is nonzero (data flowed through every operator).
  int job_spans = 0;
  for (const telemetry::Span* job : execute->children()) {
    if (job->name().rfind("job:", 0) != 0) continue;
    ++job_spans;
    int op_spans = 0;
    for (const telemetry::Span* op : job->children()) {
      if (op->name().rfind("op:", 0) != 0) continue;
      ++op_spans;
      json::Writer w;
      op->WriteJson(&w, /*include_timing=*/false);
      EXPECT_EQ(w.str().find("\"rows_in\": 0"), std::string::npos)
          << "operator saw no rows: " << w.str();
    }
    EXPECT_GT(op_spans, 0) << "job span without operator spans: "
                           << job->name();
    // The engine folded the job counters into the span.
    json::Writer w;
    job->WriteJson(&w, /*include_timing=*/false);
    EXPECT_NE(w.str().find("map_input_records"), std::string::npos);
  }
  EXPECT_EQ(job_spans, result.num_jobs);
}

// The scan of the first job must have read every table row, and the final
// job's sink rows must match the returned result rows.
TEST_F(ProfileTest, OperatorRowCountsAreConsistent) {
  Driver driver(fs_.get(), catalog_.get());
  QueryResult result = MustExecute(
      &driver,
      "EXPLAIN PROFILE SELECT o_custkey, COUNT(*) AS cnt FROM orders "
      "GROUP BY o_custkey");
  ASSERT_GE(result.num_jobs, 1);
  const telemetry::Span* execute = result.profile->FindDescendant("execute");
  ASSERT_NE(execute, nullptr);
  std::vector<const telemetry::Span*> jobs;
  for (const telemetry::Span* child : execute->children()) {
    if (child->name().rfind("job:", 0) == 0) jobs.push_back(child);
  }
  ASSERT_FALSE(jobs.empty());
  json::Writer first;
  jobs.front()->WriteJson(&first, /*include_timing=*/false);
  // 3000 table rows entered the first job's map phase.
  EXPECT_NE(first.str().find("\"map_input_records\": 3000"),
            std::string::npos)
      << first.str();
}

TEST_F(ProfileTest, ExplainProfileIsCaseInsensitive) {
  Driver driver(fs_.get(), catalog_.get());
  QueryResult result = MustExecute(
      &driver, "explain   profile select o_id from orders where o_id < 3");
  EXPECT_EQ(result.rows.size(), 3u);
  EXPECT_NE(result.profile, nullptr);
  EXPECT_NE(result.plan_text.find("query:"), std::string::npos);
}

TEST_F(ProfileTest, PlainExplainProducesNoProfile) {
  Driver driver(fs_.get(), catalog_.get());
  auto result = driver.Explain("SELECT o_id FROM orders");
  ASSERT_TRUE(result.ok());
  // Plain EXPLAIN does not execute and produces no profile.
  EXPECT_EQ(result->rows.size(), 0u);
  EXPECT_EQ(result->profile, nullptr);
}

TEST_F(ProfileTest, ProfilingOffByDefault) {
  Driver driver(fs_.get(), catalog_.get());
  QueryResult result = MustExecute(
      &driver, "SELECT o_id FROM orders WHERE o_id < 3");
  EXPECT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.profile, nullptr);
  EXPECT_EQ(driver.LastProfile(), nullptr);
}

TEST_F(ProfileTest, EnableProfilingOptionWithoutExplain) {
  DriverOptions options;
  options.enable_profiling = true;
  Driver driver(fs_.get(), catalog_.get(), options);
  QueryResult result = MustExecute(
      &driver, "SELECT o_custkey, COUNT(*) AS cnt FROM orders "
               "GROUP BY o_custkey");
  EXPECT_EQ(result.rows.size(), 100u);
  // Profile captured, but the plan text is the normal plan (no render).
  ASSERT_NE(result.profile, nullptr);
  EXPECT_EQ(result.plan_text.find("query:"), std::string::npos);
  EXPECT_NE(result.profile->FindDescendant("execute"), nullptr);
  EXPECT_EQ(driver.LastProfile(), result.profile);
}

}  // namespace
}  // namespace minihive::ql
