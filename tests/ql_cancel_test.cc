/// Query lifecycle governance end-to-end: cooperative cancellation and
/// wall-clock deadlines must stop a running query with a *typed* error
/// (Cancelled / DeadlineExceeded) promptly, leak no scratch or attempt
/// files, and leave the session usable for the next query. Latency-injected
/// reads (straggler simulation) make the queries slow enough that the
/// cancel provably lands mid-execution.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/query_context.h"
#include "common/stopwatch.h"
#include "datagen/loader.h"
#include "ql/driver.h"

namespace minihive::ql {
namespace {

class CancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dfs::FileSystemOptions fs_options;
    fs_options.block_size = 64 * 1024;  // Several blocks => several splits.
    fs_ = std::make_unique<dfs::FileSystem>(fs_options);
    catalog_ = std::make_unique<Catalog>(fs_.get());

    std::vector<Row> orders;
    for (int i = 0; i < 4000; ++i) {
      orders.push_back({Value::Int(i), Value::Int(i % 128),
                        Value::Double((i % 97) * 2.25),
                        Value::String(i % 3 == 0 ? "open" : "done")});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "orders",
                    *TypeDescription::Parse("struct<o_id:bigint,"
                                            "o_custkey:bigint,o_amount:double,"
                                            "o_status:string>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, orders, 3)
                    .ok());
  }

  void TearDown() override { fs_->set_fault_injector(nullptr); }

  /// Any file outside the warehouse after a query finished (or died) is a
  /// leak: scratch dirs, attempt files, map-join spill dirs all live under
  /// /tmp and must be cleaned on every exit path.
  std::vector<std::string> LeakedTempFiles() { return fs_->List("/tmp/"); }

  static constexpr const char* kScanSql =
      "SELECT o_custkey, COUNT(*), SUM(o_amount) FROM orders "
      "GROUP BY o_custkey";

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(CancelTest, PreCancelledTokenFailsBeforeExecution) {
  Driver driver(fs_.get(), catalog_.get(), DriverOptions());
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  driver.set_cancellation_token(token);

  auto result = driver.Execute(kScanSql);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_TRUE(LeakedTempFiles().empty());

  // The session survives: a fresh token (or none) and the query runs.
  driver.set_cancellation_token(nullptr);
  auto again = driver.Execute(kScanSql);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again->rows.empty());
}

TEST_F(CancelTest, CancelMidMapScanStopsPromptly) {
  // Every ORC read of the orders table stalls 20 ms: the map phase runs for
  // seconds if left alone. Cancel from another thread shortly after launch.
  FaultConfig faults;
  faults.read_delay_probability = 1.0;
  faults.delay_millis = 20;
  faults.path_filter = "/warehouse/orders";
  FaultInjector injector(faults);
  fs_->set_fault_injector(&injector);

  Driver driver(fs_.get(), catalog_.get(), DriverOptions());
  auto token = std::make_shared<CancellationToken>();
  driver.set_cancellation_token(token);

  Stopwatch watch;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    token->Cancel();
  });
  auto result = driver.Execute(kScanSql);
  canceller.join();
  fs_->set_fault_injector(nullptr);

  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_GT(injector.stats().read_delays.load(), 0u);
  // Promptness: one row batch / index group past the cancel, not the whole
  // scan. The full scan under these delays takes well over 5 seconds.
  EXPECT_LT(watch.ElapsedMillis(), 5000.0);
  EXPECT_TRUE(LeakedTempFiles().empty())
      << "cancelled query leaked temp/attempt files";

  driver.set_cancellation_token(nullptr);
  auto again = driver.Execute(kScanSql);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows.size(), 128u);
}

TEST_F(CancelTest, CancelMidReduceStopsPromptly) {
  // Delays target the query's own scratch files (sink appends), so the map
  // scan runs clean and the stall — and the cancel — lands in the reduce /
  // sink phase. The sink writer buffers rows and flushes once per task, so
  // each reduce task sees roughly one delayed append; 250 ms per append
  // guarantees the reduce phase is still in flight when the 60 ms cancel
  // fires, and the post-attempt governor check picks it up.
  FaultConfig faults;
  faults.append_delay_probability = 1.0;
  faults.delay_millis = 250;
  faults.path_filter = "/tmp/query-";
  FaultInjector injector(faults);
  fs_->set_fault_injector(&injector);

  Driver driver(fs_.get(), catalog_.get(), DriverOptions());
  auto token = std::make_shared<CancellationToken>();
  driver.set_cancellation_token(token);

  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    token->Cancel();
  });
  Stopwatch watch;
  auto result = driver.Execute(kScanSql);
  canceller.join();
  fs_->set_fault_injector(nullptr);

  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_LT(watch.ElapsedMillis(), 5000.0);
  EXPECT_TRUE(LeakedTempFiles().empty())
      << "cancelled query leaked temp/attempt files";

  driver.set_cancellation_token(nullptr);
  auto again = driver.Execute(kScanSql);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(CancelTest, CancelMidVectorizedOrcScan) {
  // The vectorized pipeline polls the governor per batch and the ORC reader
  // per index group; both paths must honour the token.
  FaultConfig faults;
  faults.read_delay_probability = 1.0;
  faults.delay_millis = 20;
  faults.path_filter = "/warehouse/orders";
  FaultInjector injector(faults);
  fs_->set_fault_injector(&injector);

  DriverOptions options;
  options.vectorized_execution = true;
  Driver driver(fs_.get(), catalog_.get(), options);
  auto token = std::make_shared<CancellationToken>();
  driver.set_cancellation_token(token);

  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    token->Cancel();
  });
  Stopwatch watch;
  auto result = driver.Execute(kScanSql);
  canceller.join();
  fs_->set_fault_injector(nullptr);

  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_LT(watch.ElapsedMillis(), 5000.0);
  EXPECT_TRUE(LeakedTempFiles().empty());
}

TEST_F(CancelTest, QueryDeadlineOverDelayedReadsNeverHangs) {
  // The acceptance scenario: a query with a deadline over a delay-injected
  // filesystem returns DeadlineExceeded (never hangs, never IoError).
  FaultConfig faults;
  faults.read_delay_probability = 1.0;
  faults.delay_millis = 20;
  faults.path_filter = "/warehouse/orders";
  FaultInjector injector(faults);
  fs_->set_fault_injector(&injector);

  DriverOptions options;
  options.query_timeout_millis = 100;
  Driver driver(fs_.get(), catalog_.get(), options);

  Stopwatch watch;
  auto result = driver.Execute(kScanSql);
  fs_->set_fault_injector(nullptr);

  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_LT(watch.ElapsedMillis(), 5000.0);
  EXPECT_TRUE(LeakedTempFiles().empty());

  // Without the deadline the same session answers the query.
  driver.options().query_timeout_millis = 0;
  auto again = driver.Execute(kScanSql);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows.size(), 128u);
}

TEST_F(CancelTest, GenerousDeadlineDoesNotDisturbResults) {
  DriverOptions plain_options;
  Driver plain(fs_.get(), catalog_.get(), plain_options);
  auto want = plain.Execute(kScanSql);
  ASSERT_TRUE(want.ok());

  DriverOptions options;
  options.query_timeout_millis = 60 * 1000;
  options.task_timeout_millis = 30 * 1000;
  Driver driver(fs_.get(), catalog_.get(), options);
  auto token = std::make_shared<CancellationToken>();
  driver.set_cancellation_token(token);  // Armed but never fired.
  auto got = driver.Execute(kScanSql);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->rows.size(), want->rows.size());
  EXPECT_EQ(got->counters.queries_cancelled.load(), 0u);
  EXPECT_EQ(got->counters.tasks_timed_out.load(), 0u);
}

}  // namespace
}  // namespace minihive::ql
