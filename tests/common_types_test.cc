#include "common/types.h"

#include <gtest/gtest.h>

namespace minihive {
namespace {

TEST(TypeDescriptionTest, PaperFigure3ColumnIds) {
  // The example table from the paper's Figure 3.
  auto result = TypeDescription::Parse(
      "struct<col1:int,col2:array<int>,"
      "col4:map<string,struct<col7:string,col8:int>>,col9:string>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  TypePtr schema = *result;
  schema->AssignColumnIds(0);
  EXPECT_EQ(schema->column_id(), 0);
  EXPECT_EQ(schema->children()[0]->column_id(), 1);               // col1
  EXPECT_EQ(schema->children()[1]->column_id(), 2);               // col2
  EXPECT_EQ(schema->children()[1]->children()[0]->column_id(), 3);  // items
  EXPECT_EQ(schema->children()[2]->column_id(), 4);               // col4
  EXPECT_EQ(schema->children()[2]->children()[0]->column_id(), 5);  // key
  EXPECT_EQ(schema->children()[2]->children()[1]->column_id(), 6);  // value
  EXPECT_EQ(schema->children()[2]->children()[1]->children()[0]->column_id(),
            7);                                                   // col7
  EXPECT_EQ(schema->children()[2]->children()[1]->children()[1]->column_id(),
            8);                                                   // col8
  EXPECT_EQ(schema->children()[3]->column_id(), 9);               // col9
  EXPECT_EQ(schema->ColumnCount(), 10);
}

TEST(TypeDescriptionTest, RoundTripToString) {
  const char* text =
      "struct<a:bigint,b:array<double>,c:map<string,int>,"
      "d:uniontype<int,string>,e:boolean>";
  auto result = TypeDescription::Parse(text);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->ToString(), text);
}

TEST(TypeDescriptionTest, ParseErrors) {
  EXPECT_FALSE(TypeDescription::Parse("arry<int>").ok());
  EXPECT_FALSE(TypeDescription::Parse("array<int").ok());
  EXPECT_FALSE(TypeDescription::Parse("map<int>").ok());
  EXPECT_FALSE(TypeDescription::Parse("struct<a int>").ok());
  EXPECT_FALSE(TypeDescription::Parse("int,int").ok());
}

TEST(TypeKindTest, Families) {
  EXPECT_TRUE(IsIntegerFamily(TypeKind::kBoolean));
  EXPECT_TRUE(IsIntegerFamily(TypeKind::kTimestamp));
  EXPECT_FALSE(IsIntegerFamily(TypeKind::kDouble));
  EXPECT_TRUE(IsFloatingFamily(TypeKind::kFloat));
  EXPECT_FALSE(IsPrimitive(TypeKind::kMap));
  EXPECT_TRUE(IsPrimitive(TypeKind::kString));
}

}  // namespace
}  // namespace minihive
