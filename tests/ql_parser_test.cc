#include "ql/parser.h"

#include <gtest/gtest.h>

namespace minihive::ql {
namespace {

AstQueryPtr MustParse(const std::string& sql) {
  auto result = ParseQuery(sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  return result.ok() ? *result : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  AstQueryPtr q = MustParse("SELECT a FROM t");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].expr->name, "a");
  EXPECT_EQ(q->from.table, "t");
  EXPECT_EQ(q->from.alias, "t");
}

TEST(ParserTest, SelectStarWithSemicolon) {
  AstQueryPtr q = MustParse("select * from t;");
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->select_star);
}

TEST(ParserTest, CaseInsensitiveKeywordsAndAliases) {
  AstQueryPtr q = MustParse(
      "Select a As x, SUM(b) total From t Where a > 1 Group By a");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->select[0].alias, "x");
  EXPECT_EQ(q->select[1].alias, "total");
  ASSERT_NE(q->where, nullptr);
  ASSERT_EQ(q->group_by.size(), 1u);
}

TEST(ParserTest, OperatorPrecedence) {
  AstQueryPtr q = MustParse("SELECT a + b * c FROM t");
  const AstExpr& e = *q->select[0].expr;
  ASSERT_EQ(e.kind, AstExprKind::kBinary);
  EXPECT_EQ(e.op, "+");
  EXPECT_EQ(e.children[1]->op, "*");
}

TEST(ParserTest, AndOrPrecedenceAndNot) {
  AstQueryPtr q =
      MustParse("SELECT a FROM t WHERE a = 1 OR b = 2 AND NOT c = 3");
  const AstExpr& e = *q->where;
  EXPECT_EQ(e.op, "OR");
  EXPECT_EQ(e.children[1]->op, "AND");
  EXPECT_EQ(e.children[1]->children[1]->kind, AstExprKind::kNot);
}

TEST(ParserTest, BetweenInIsNull) {
  AstQueryPtr q = MustParse(
      "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3) "
      "AND c IS NOT NULL AND d NOT IN ('x')");
  std::string text = q->where->ToString();
  EXPECT_NE(text.find("BETWEEN"), std::string::npos);
  EXPECT_NE(text.find("IN ("), std::string::npos);
  EXPECT_NE(text.find("IS NOT NULL"), std::string::npos);
  EXPECT_NE(text.find("NOT IN"), std::string::npos);
}

TEST(ParserTest, JoinsWithQualifiersAndSubquery) {
  AstQueryPtr q = MustParse(
      "SELECT t.a, s.b FROM t JOIN (SELECT x AS b, y FROM u) s "
      "ON t.a = s.b LEFT OUTER JOIN v ON v.k = t.a");
  ASSERT_EQ(q->joins.size(), 2u);
  EXPECT_NE(q->joins[0].right.subquery, nullptr);
  EXPECT_EQ(q->joins[0].right.alias, "s");
  EXPECT_FALSE(q->joins[0].left_outer);
  EXPECT_TRUE(q->joins[1].left_outer);
  EXPECT_EQ(q->select[0].expr->qualifier, "t");
}

TEST(ParserTest, OrderByDirectionsAndLimit) {
  AstQueryPtr q = MustParse(
      "SELECT a, b FROM t ORDER BY a DESC, b ASC LIMIT 42");
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_FALSE(q->order_by[0].ascending);
  EXPECT_TRUE(q->order_by[1].ascending);
  EXPECT_EQ(q->limit, 42);
}

TEST(ParserTest, LiteralsAndNegativeNumbers) {
  AstQueryPtr q = MustParse(
      "SELECT -5, 3.25, 'quoted ''?'' text', TRUE, NULL, 1e3 FROM t");
  EXPECT_EQ(q->select[0].expr->literal.AsInt(), -5);
  EXPECT_DOUBLE_EQ(q->select[1].expr->literal.AsDouble(), 3.25);
  EXPECT_TRUE(q->select[3].expr->literal.AsBool());
  EXPECT_TRUE(q->select[4].expr->literal.is_null());
  EXPECT_DOUBLE_EQ(q->select[5].expr->literal.AsDouble(), 1000.0);
}

TEST(ParserTest, AggregateFunctions) {
  AstQueryPtr q = MustParse(
      "SELECT COUNT(*), SUM(a), AVG(a + b), MIN(a), MAX(a) FROM t");
  EXPECT_TRUE(q->select[0].expr->star);
  EXPECT_EQ(q->select[0].expr->function, "COUNT");
  EXPECT_EQ(q->select[2].expr->function, "AVG");
  EXPECT_EQ(q->select[2].expr->children[0]->op, "+");
}

TEST(ParserTest, KeywordsUsableAsColumnNames) {
  // min/max/avg etc. are only functions when followed by '('.
  AstQueryPtr q = MustParse("SELECT t.min, avg FROM t WHERE count > 3");
  EXPECT_EQ(q->select[0].expr->name, "MIN");
  EXPECT_EQ(q->select[1].expr->name, "AVG");
}

TEST(ParserTest, StatementWordsAreContextualNotReserved) {
  // CREATE/INSERT/VALUES/DELETE/... are matched positionally by the
  // statement grammar, never reserved — datasets commonly have columns
  // with these names. As identifiers they keep their original case.
  AstQueryPtr q = MustParse(
      "SELECT values, t.insert, drop AS d FROM t WHERE delete = 1 AND "
      "partitioned > stored ORDER BY unique");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->select[0].expr->name, "values");
  EXPECT_EQ(q->select[1].expr->name, "insert");
  EXPECT_EQ(q->select[1].expr->qualifier, "t");
  EXPECT_EQ(q->select[2].expr->name, "drop");
  EXPECT_EQ(q->select[2].alias, "d");
  // Table references too.
  AstQueryPtr q2 = MustParse("SELECT a FROM create JOIN into ON a = b");
  EXPECT_EQ(q2->from.table, "create");
  EXPECT_EQ(q2->joins[0].right.table, "into");
}

TEST(ParserTest, StatementWordsCaseInsensitiveInStatements) {
  auto create = ParseStatement(
      "create table T (k int, region string) partitioned by (region) "
      "unique key (k) stored as orc");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  EXPECT_EQ((*create)->kind, AstStatementKind::kCreateTable);
  EXPECT_EQ((*create)->create->unique_key, "k");
  auto insert = ParseStatement("Insert Into T Values (1, 'eu'), (2, 'us')");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_EQ((*insert)->insert->rows.size(), 2u);
  auto del = ParseStatement("delete from T where k = 1");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  auto drop = ParseStatement("DROP table T");
  ASSERT_TRUE(drop.ok()) << drop.status().ToString();
  EXPECT_EQ((*drop)->drop_table, "T");
  // Malformed statement heads still fail with a parse error.
  EXPECT_FALSE(ParseStatement("INSERT T VALUES (1)").ok());
  EXPECT_FALSE(ParseStatement("CREATE t (k INT)").ok());
}

TEST(ParserTest, LineCommentsSkipped) {
  AstQueryPtr q = MustParse(
      "SELECT a -- trailing comment\nFROM t -- another\nWHERE a = 1");
  ASSERT_NE(q, nullptr);
  ASSERT_NE(q->where, nullptr);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT").ok());
  EXPECT_FALSE(ParseQuery("SELECT a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM (SELECT b FROM u)").ok());  // No alias.
  EXPECT_FALSE(ParseQuery("SELECT a FROM t JOIN u").ok());  // No ON.
  EXPECT_FALSE(ParseQuery("SELECT a FROM t extra garbage here ,").ok());
  EXPECT_FALSE(ParseQuery("SELECT 'unterminated FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE a @ 3").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t LIMIT x").ok());
}

}  // namespace
}  // namespace minihive::ql
