#include "common/scheduler.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace minihive {
namespace {

TEST(SchedulerTest, RunsEveryTaskExactlyOnce) {
  TaskScheduler scheduler(SchedulerOptions{.num_workers = 4});
  TaskScheduler::Queue* queue = scheduler.RegisterQueue("q");
  std::vector<std::atomic<int>> ran(100);
  Status s = scheduler.RunParallel(queue, 100, [&](int i) {
    ran[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
  scheduler.UnregisterQueue(queue);
}

TEST(SchedulerTest, ReturnsFirstErrorAndStillRunsAllTasks) {
  TaskScheduler scheduler(SchedulerOptions{.num_workers = 2});
  TaskScheduler::Queue* queue = scheduler.RegisterQueue("q");
  std::atomic<int> ran{0};
  Status s = scheduler.RunParallel(queue, 50, [&](int i) -> Status {
    ran.fetch_add(1);
    if (i % 7 == 3) return Status::Internal("task " + std::to_string(i));
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInternal()) << s.ToString();
  // Error semantics match the engine's historical RunParallel: a failure
  // does not cancel the rest of the batch (retries happen per task).
  EXPECT_EQ(ran.load(), 50);
  scheduler.UnregisterQueue(queue);
}

TEST(SchedulerTest, ZeroWorkersStillCompletesViaCallerHandoff) {
  TaskScheduler scheduler(SchedulerOptions{.num_workers = 0});
  ASSERT_EQ(scheduler.num_workers(), 0);
  TaskScheduler::Queue* queue = scheduler.RegisterQueue("q");
  std::atomic<int> ran{0};
  Status s = scheduler.RunParallel(queue, 25, [&](int) {
    ran.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(ran.load(), 25);
  scheduler.UnregisterQueue(queue);
}

TEST(SchedulerTest, EmptyBatchIsANoOp) {
  TaskScheduler scheduler(SchedulerOptions{.num_workers = 2});
  TaskScheduler::Queue* queue = scheduler.RegisterQueue("q");
  EXPECT_TRUE(scheduler.RunParallel(queue, 0, [](int) {
    return Status::Internal("must not run");
  }).ok());
  scheduler.UnregisterQueue(queue);
}

TEST(SchedulerTest, ConcurrentBatchesFromManyQueuesAllComplete) {
  TaskScheduler scheduler(SchedulerOptions{.num_workers = 4});
  constexpr int kClients = 8;
  constexpr int kBatches = 10;
  constexpr int kTasks = 16;
  std::vector<std::atomic<int>> done(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TaskScheduler::Queue* queue = scheduler.RegisterQueue(
          "client-" + std::to_string(c), c % 2 == 0 ? kPriorityNormal
                                                    : kPriorityLow);
      for (int b = 0; b < kBatches; ++b) {
        Status s = scheduler.RunParallel(queue, kTasks, [&](int) {
          done[c].fetch_add(1);
          return Status::OK();
        });
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
      scheduler.UnregisterQueue(queue);
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(done[c].load(), kBatches * kTasks) << "client " << c;
  }
}

TEST(SchedulerTest, QueueStatsCountTasksAndWait) {
  TaskScheduler scheduler(SchedulerOptions{.num_workers = 2});
  TaskScheduler::Queue* queue = scheduler.RegisterQueue("q");
  ASSERT_TRUE(scheduler.RunParallel(queue, 32, [](int) {
    return Status::OK();
  }).ok());
  TaskScheduler::QueueStats stats = scheduler.GetQueueStats(queue);
  EXPECT_EQ(stats.tasks_run, 32u);
  scheduler.UnregisterQueue(queue);
}

TEST(SchedulerTest, ErrorsFromConcurrentQueuesStayIsolated) {
  TaskScheduler scheduler(SchedulerOptions{.num_workers = 3});
  TaskScheduler::Queue* good = scheduler.RegisterQueue("good");
  TaskScheduler::Queue* bad = scheduler.RegisterQueue("bad");
  Status good_status, bad_status;
  std::thread good_client([&] {
    good_status = scheduler.RunParallel(good, 64, [](int) {
      return Status::OK();
    });
  });
  std::thread bad_client([&] {
    bad_status = scheduler.RunParallel(bad, 64, [](int i) -> Status {
      return i == 10 ? Status::Internal("boom") : Status::OK();
    });
  });
  good_client.join();
  bad_client.join();
  EXPECT_TRUE(good_status.ok()) << good_status.ToString();
  EXPECT_TRUE(bad_status.IsInternal()) << bad_status.ToString();
  scheduler.UnregisterQueue(good);
  scheduler.UnregisterQueue(bad);
}

}  // namespace
}  // namespace minihive
