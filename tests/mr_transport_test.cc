/// The distributed dispatch seam: wire protocol integrity (round trip,
/// CRC rejection), worker health tracking (heartbeats, blacklisting,
/// probation), retry backoff, speculative re-execution, exactly-once
/// output under duplicate deliveries, and graceful local fallback when the
/// whole pool is out.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/fault.h"
#include "common/worker_manager.h"
#include "datagen/loader.h"
#include "mr/transport.h"
#include "ql/driver.h"

namespace minihive::mr {
namespace {

// ---------------------------------------------------------------------------
// Wire protocol.
// ---------------------------------------------------------------------------

TEST(TransportWireTest, RequestRoundTrip) {
  TaskRequest request;
  request.request_id = 77;
  request.job_id = 12;
  request.job_name = "job:groupby-1";
  request.kind = TaskKind::kMap;
  request.task_index = 3;
  request.attempt = 2;
  request.split.path = "/warehouse/orders/part-0";
  request.split.offset = 65536;
  request.split.length = 4096;
  request.split.locality_host = -1;
  request.split.source_tag = 1;

  std::string frame = EncodeTaskRequest(request);
  TaskRequest decoded;
  ASSERT_TRUE(DecodeTaskRequest(frame, &decoded).ok());
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.job_id, request.job_id);
  EXPECT_EQ(decoded.job_name, request.job_name);
  EXPECT_EQ(decoded.kind, request.kind);
  EXPECT_EQ(decoded.task_index, request.task_index);
  EXPECT_EQ(decoded.attempt, request.attempt);
  EXPECT_EQ(decoded.split.path, request.split.path);
  EXPECT_EQ(decoded.split.offset, request.split.offset);
  EXPECT_EQ(decoded.split.length, request.split.length);
  EXPECT_EQ(decoded.split.locality_host, request.split.locality_host);
  EXPECT_EQ(decoded.split.source_tag, request.split.source_tag);
}

TEST(TransportWireTest, ResponseRoundTrip) {
  TaskResponse response;
  response.request_id = 99;
  response.job_id = 12;
  response.kind = TaskKind::kReduce;
  response.task_index = 1;
  response.attempt = 4;
  response.code = StatusCode::kIoError;
  response.message = "injected read fault on /warehouse/orders (call 7)";

  std::string frame = EncodeTaskResponse(response);
  TaskResponse decoded;
  ASSERT_TRUE(DecodeTaskResponse(frame, &decoded).ok());
  EXPECT_EQ(decoded.request_id, response.request_id);
  EXPECT_EQ(decoded.job_id, response.job_id);
  EXPECT_EQ(decoded.kind, response.kind);
  EXPECT_EQ(decoded.task_index, response.task_index);
  EXPECT_EQ(decoded.attempt, response.attempt);
  EXPECT_EQ(decoded.code, response.code);
  EXPECT_EQ(decoded.message, response.message);
}

TEST(TransportWireTest, EveryFlippedByteIsRejected) {
  TaskRequest request;
  request.request_id = 5;
  request.job_id = 1;
  request.job_name = "j";
  request.split.path = "/p";
  std::string frame = EncodeTaskRequest(request);

  // Flip each byte of the frame in turn: header corruption must fail the
  // magic/version/kind checks, payload corruption must fail the CRC, and
  // CRC corruption must mismatch the payload. No flip may decode cleanly
  // into the original request.
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    TaskRequest decoded;
    Status status = DecodeTaskRequest(bad, &decoded);
    EXPECT_FALSE(status.ok()) << "flip at byte " << i << " decoded cleanly";
    if (!status.ok()) {
      EXPECT_TRUE(status.IsCorruption()) << status.ToString();
    }
  }
}

TEST(TransportWireTest, TruncationAndGarbageAreRejected) {
  TaskResponse response;
  response.request_id = 8;
  std::string frame = EncodeTaskResponse(response);
  TaskResponse decoded;
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_TRUE(DecodeTaskResponse(std::string_view(frame).substr(0, len),
                                   &decoded)
                    .IsCorruption())
        << "truncation to " << len << " bytes decoded cleanly";
  }
  EXPECT_TRUE(DecodeTaskResponse("not a frame at all", &decoded)
                  .IsCorruption());
  // Trailing junk after a valid frame is corruption, not silently ignored.
  EXPECT_TRUE(DecodeTaskResponse(frame + "x", &decoded).IsCorruption());
  // A request frame is not a response frame.
  TaskRequest request;
  EXPECT_TRUE(
      DecodeTaskResponse(EncodeTaskRequest(request), &decoded).IsCorruption());
  EXPECT_TRUE(
      DecodeTaskRequest(frame, &request).IsCorruption());
}

// ---------------------------------------------------------------------------
// Backoff.
// ---------------------------------------------------------------------------

TEST(BackoffTest, DeterministicCappedExponentialWithJitter) {
  BackoffPolicy policy;
  policy.base_millis = 10;
  policy.max_millis = 100;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;
  for (int attempt = 0; attempt < 8; ++attempt) {
    int64_t a = BackoffDelayMillis(policy, attempt, /*seed=*/42);
    int64_t b = BackoffDelayMillis(policy, attempt, /*seed=*/42);
    EXPECT_EQ(a, b) << "same (policy, attempt, seed) must be deterministic";
    // Jitter scales the exponential delay within [1-jitter, 1] of its
    // nominal value, and the cap bounds everything.
    int64_t nominal = std::min<int64_t>(
        policy.max_millis,
        static_cast<int64_t>(10 * std::pow(2.0, attempt)));
    EXPECT_LE(a, nominal);
    EXPECT_GE(a, nominal / 2);
  }
  // Different seeds decorrelate the jitter (not all equal across attempts).
  bool any_differs = false;
  for (int attempt = 0; attempt < 8 && !any_differs; ++attempt) {
    any_differs = BackoffDelayMillis(policy, attempt, 1) !=
                  BackoffDelayMillis(policy, attempt, 2);
  }
  EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------------------------
// WorkerManager: liveness, blacklist, speculation arming.
// ---------------------------------------------------------------------------

WorkerPoolOptions SmallPool() {
  WorkerPoolOptions options;
  options.num_workers = 3;
  options.heartbeat_millis = 0;  // No monitor thread; tests drive probes.
  options.missed_heartbeats_dead = 2;
  options.worker_blacklist_failures = 2;
  options.blacklist_probation_millis = 60;
  options.min_duration_samples = 4;
  options.speculative_threshold = 2.0;
  options.speculative_min_millis = 10;
  return options;
}

TEST(WorkerManagerTest, HeartbeatMissesKillAndRevive) {
  WorkerManager manager(SmallPool());
  EXPECT_TRUE(manager.IsAlive(1));
  manager.ReportHeartbeat(1, false);
  EXPECT_TRUE(manager.IsAlive(1)) << "one miss must not kill";
  manager.ReportHeartbeat(1, false);
  EXPECT_FALSE(manager.IsAlive(1)) << "missed_heartbeats_dead misses kill";
  EXPECT_FALSE(manager.IsUsable(1));
  EXPECT_EQ(manager.stats().deaths, 1u);
  EXPECT_EQ(manager.stats().heartbeats_missed, 2u);
  manager.ReportHeartbeat(1, true);
  EXPECT_TRUE(manager.IsAlive(1)) << "a successful probe revives";
}

TEST(WorkerManagerTest, DispatchFailuresBlacklistThenProbation) {
  WorkerManager manager(SmallPool());
  manager.ReportDispatch(0, false);
  EXPECT_FALSE(manager.IsBlacklisted(0));
  manager.ReportDispatch(0, false);
  EXPECT_TRUE(manager.IsBlacklisted(0))
      << "worker_blacklist_failures consecutive failures blacklist";
  EXPECT_FALSE(manager.IsUsable(0));
  EXPECT_EQ(manager.stats().blacklists, 1u);

  // Probation: after the sit-out the worker becomes usable again...
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(manager.IsBlacklisted(0));
  EXPECT_TRUE(manager.IsUsable(0));
  // ...but one failure on probation re-blacklists immediately.
  manager.ReportDispatch(0, false);
  EXPECT_TRUE(manager.IsBlacklisted(0));
  EXPECT_EQ(manager.stats().blacklists, 2u);

  // A success on probation fully re-admits (failure streak cleared).
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  manager.ReportDispatch(0, true);
  EXPECT_EQ(manager.stats().probation_readmissions, 1u);
  manager.ReportDispatch(0, false);
  EXPECT_FALSE(manager.IsBlacklisted(0))
      << "re-admission must reset the failure streak";
}

TEST(WorkerManagerTest, SuccessResetsFailureStreak) {
  WorkerManager manager(SmallPool());
  manager.ReportDispatch(2, false);
  manager.ReportDispatch(2, true);
  manager.ReportDispatch(2, false);
  EXPECT_FALSE(manager.IsBlacklisted(2))
      << "only consecutive failures count toward the blacklist";
}

TEST(WorkerManagerTest, PickWorkerSkipsUnusableAndHonoursExclude) {
  WorkerManager manager(SmallPool());
  manager.ReportHeartbeat(0, false);
  manager.ReportHeartbeat(0, false);  // 0 dead.
  manager.ReportDispatch(2, false);
  manager.ReportDispatch(2, false);  // 2 blacklisted.
  for (uint64_t salt = 0; salt < 16; ++salt) {
    auto pick = manager.PickWorker(salt);
    ASSERT_TRUE(pick.ok());
    EXPECT_EQ(*pick, 1);
  }
  // Excluding the only usable worker still returns it (one-worker pools
  // speculate on the same worker rather than not at all).
  auto pick = manager.PickWorker(7, /*exclude=*/1);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 1);

  manager.ReportHeartbeat(1, false);
  manager.ReportHeartbeat(1, false);  // 1 dead too: nobody usable.
  auto none = manager.PickWorker(7);
  ASSERT_FALSE(none.ok());
  EXPECT_TRUE(none.status().IsResourceExhausted());
}

TEST(WorkerManagerTest, SpeculationArmsAfterEnoughSamples) {
  WorkerManager manager(SmallPool());
  EXPECT_EQ(manager.SpeculativeDelayMillis(), -1)
      << "no samples: speculation disarmed";
  for (int i = 0; i < 4; ++i) manager.RecordTaskDurationMillis(20);
  // p99 of the all-20 window is 20; threshold 2.0 => 40ms, above the floor.
  EXPECT_EQ(manager.SpeculativeDelayMillis(), 40);

  WorkerPoolOptions off = SmallPool();
  off.speculative_threshold = 0;
  WorkerManager disabled(off);
  for (int i = 0; i < 8; ++i) disabled.RecordTaskDurationMillis(20);
  EXPECT_EQ(disabled.SpeculativeDelayMillis(), -1);
}

// ---------------------------------------------------------------------------
// Dispatch coordination against the simulated remote transport.
// ---------------------------------------------------------------------------

class DispatchTest : public ::testing::Test {
 protected:
  static WorkerPoolOptions Pool(int workers) {
    WorkerPoolOptions options = SmallPool();
    options.num_workers = workers;
    options.rpc_timeout_millis = 400;
    options.retry_backoff.base_millis = 1;
    options.retry_backoff.max_millis = 10;
    return options;
  }

  static SimulatedRemoteTransport::Options TransportOptions(int workers) {
    SimulatedRemoteTransport::Options topt;
    topt.num_workers = workers;
    topt.rpc_timeout_millis = 400;
    return topt;
  }

  DispatchOutcome RunOne(DispatchCoordinator* coordinator, uint64_t job_id,
                         int max_attempts = 4) {
    InputSplit split;
    split.path = "/warehouse/t/part-0";
    return coordinator->RunTask(job_id, "job:test", TaskKind::kMap,
                                /*task_index=*/0, split, max_attempts,
                                /*query_ctx=*/nullptr);
  }
};

TEST_F(DispatchTest, SimpleDispatchSucceeds) {
  SimulatedRemoteTransport transport(TransportOptions(2));
  WorkerManager manager(Pool(2));
  DispatchCoordinator coordinator(&transport, &manager);

  std::atomic<int> runs{0};
  uint64_t job = coordinator.NewJobId();
  coordinator.StartJob(job, [&](const TaskRequest& request,
                                const CancellationToken*) {
    EXPECT_EQ(request.job_id, job);
    EXPECT_EQ(request.task_index, 0);
    runs.fetch_add(1);
    return Status::OK();
  });
  DispatchOutcome outcome = RunOne(&coordinator, job);
  coordinator.EndJob(job);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(outcome.dispatches, 1);
  EXPECT_EQ(outcome.winning_attempt, 0);
  EXPECT_FALSE(outcome.ran_local_fallback);
}

TEST_F(DispatchTest, FailingExecutorRetriesWithBackoffThenSucceeds) {
  SimulatedRemoteTransport transport(TransportOptions(2));
  WorkerManager manager(Pool(2));
  DispatchCoordinator coordinator(&transport, &manager);

  std::atomic<int> runs{0};
  uint64_t job = coordinator.NewJobId();
  coordinator.StartJob(job, [&](const TaskRequest&, const CancellationToken*) {
    return runs.fetch_add(1) < 2 ? Status::IoError("transient") : Status::OK();
  });
  DispatchOutcome outcome = RunOne(&coordinator, job);
  coordinator.EndJob(job);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(runs.load(), 3);
  EXPECT_EQ(outcome.failures, 2);
  EXPECT_EQ(outcome.retries, 2);
  EXPECT_GT(outcome.retried_nanos, 0);
}

TEST_F(DispatchTest, DeterministicFailureSurfacesAfterMaxAttempts) {
  SimulatedRemoteTransport transport(TransportOptions(2));
  WorkerManager manager(Pool(2));
  DispatchCoordinator coordinator(&transport, &manager);

  uint64_t job = coordinator.NewJobId();
  coordinator.StartJob(job, [&](const TaskRequest&, const CancellationToken*) {
    return Status::InvalidArgument("bad row");
  });
  DispatchOutcome outcome = RunOne(&coordinator, job, /*max_attempts=*/3);
  coordinator.EndJob(job);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_TRUE(outcome.status.IsInvalidArgument()) << outcome.status.ToString();
  EXPECT_EQ(outcome.failures, 3);
  EXPECT_EQ(outcome.winning_attempt, -1);
}

TEST_F(DispatchTest, SpeculativeDuplicateBeatsStraggler) {
  SimulatedRemoteTransport transport(TransportOptions(2));
  WorkerPoolOptions pool = Pool(2);
  pool.speculative_threshold = 1.0;
  pool.speculative_min_millis = 20;
  pool.min_duration_samples = 1;
  WorkerManager manager(pool);
  // Pre-arm the straggler detector: typical tasks take ~5ms.
  for (int i = 0; i < 4; ++i) manager.RecordTaskDurationMillis(5);
  DispatchCoordinator coordinator(&transport, &manager);

  // The first physical attempt straggles (cooperatively, polling its kill
  // switch); every later attempt is instant. The speculative duplicate must
  // win and the straggler must be cancelled, not joined-on for its full nap.
  std::atomic<int> calls{0};
  std::atomic<bool> straggler_cancelled{false};
  uint64_t job = coordinator.NewJobId();
  coordinator.StartJob(
      job, [&](const TaskRequest&, const CancellationToken* cancel) {
        if (calls.fetch_add(1) == 0) {
          for (int i = 0; i < 400; ++i) {
            if (cancel != nullptr && cancel->cancelled()) {
              straggler_cancelled.store(true);
              return Status::Cancelled("straggler killed");
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }
        return Status::OK();
      });
  DispatchOutcome outcome = RunOne(&coordinator, job);
  coordinator.EndJob(job);
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.speculative_launches, 1);
  EXPECT_TRUE(outcome.speculative_won);
  EXPECT_EQ(outcome.winning_attempt, 1) << "the duplicate's attempt id wins";
  EXPECT_TRUE(straggler_cancelled.load());
  EXPECT_EQ(outcome.failures, 0) << "a cancelled loser is not a failure";
}

TEST_F(DispatchTest, AllWorkersOutFallsBackToLocalRun) {
  SimulatedRemoteTransport transport(TransportOptions(2));
  WorkerManager manager(Pool(2));
  DispatchCoordinator coordinator(&transport, &manager);
  // Kill both workers via missed heartbeats.
  for (int w = 0; w < 2; ++w) {
    manager.ReportHeartbeat(w, false);
    manager.ReportHeartbeat(w, false);
  }

  std::atomic<int> runs{0};
  uint64_t job = coordinator.NewJobId();
  coordinator.StartJob(job, [&](const TaskRequest&, const CancellationToken*) {
    runs.fetch_add(1);
    return Status::OK();
  });
  DispatchOutcome outcome = RunOne(&coordinator, job);
  coordinator.EndJob(job);
  EXPECT_TRUE(outcome.status.ok())
      << "degradation must not fail the query: " << outcome.status.ToString();
  EXPECT_TRUE(outcome.ran_local_fallback);
  EXPECT_EQ(runs.load(), 1);
}

TEST_F(DispatchTest, CrashedWorkerFastFailsAndWorkRoutesAround) {
  SimulatedRemoteTransport transport(TransportOptions(2));
  WorkerManager manager(Pool(2));
  DispatchCoordinator coordinator(&transport, &manager);

  // Crash worker 0 deterministically on its first delivery.
  FaultConfig config;
  config.worker_crash_before_commit_probability = 1.0;
  config.path_filter = "worker-0/";
  FaultInjector injector(config);
  transport.set_fault_injector(&injector);

  std::atomic<int> runs{0};
  uint64_t job = coordinator.NewJobId();
  coordinator.StartJob(job, [&](const TaskRequest&, const CancellationToken*) {
    runs.fetch_add(1);
    return Status::OK();
  });
  // Enough tasks that at least one is placed on worker 0 first.
  int crashes_seen = 0;
  for (int task = 0; task < 8; ++task) {
    InputSplit split;
    split.path = "/warehouse/t/part-" + std::to_string(task);
    DispatchOutcome outcome =
        coordinator.RunTask(job, "job:test", TaskKind::kMap, task, split,
                            /*max_attempts=*/4, nullptr);
    EXPECT_TRUE(outcome.status.ok())
        << "task " << task << ": " << outcome.status.ToString();
    crashes_seen += outcome.failures;
  }
  coordinator.EndJob(job);
  transport.set_fault_injector(nullptr);
  EXPECT_TRUE(transport.WorkerCrashed(0)) << "the injected crash never fired";
  EXPECT_GT(crashes_seen, 0)
      << "no task ever hit the crashed worker; sweep is vacuous";
  EXPECT_EQ(runs.load(), 8) << "every task must still run exactly once";
}

// ---------------------------------------------------------------------------
// End-to-end queries through the dispatch layer.
// ---------------------------------------------------------------------------

class DispatchQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dfs::FileSystemOptions fs_options;
    fs_options.block_size = 64 * 1024;
    fs_ = std::make_unique<dfs::FileSystem>(fs_options);
    catalog_ = std::make_unique<ql::Catalog>(fs_.get());
    std::vector<Row> orders;
    for (int i = 0; i < 3000; ++i) {
      orders.push_back({Value::Int(i), Value::Int(i % 64),
                        Value::Double((i % 53) * 1.5)});
    }
    ASSERT_TRUE(datagen::CreateAndLoad(
                    catalog_.get(), "orders",
                    *TypeDescription::Parse(
                        "struct<o_id:bigint,o_custkey:bigint,"
                        "o_amount:double>"),
                    formats::FormatKind::kOrcFile,
                    codec::CompressionKind::kNone, orders, 3)
                    .ok());
  }

  static std::vector<std::string> Canonicalize(const std::vector<Row>& rows) {
    std::vector<std::string> out;
    for (const Row& row : rows) {
      std::string line;
      for (const Value& v : row) line += v.ToString() + "|";
      out.push_back(std::move(line));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  const std::string kSql =
      "SELECT o_custkey, COUNT(*) AS cnt, SUM(o_amount) AS total "
      "FROM orders GROUP BY o_custkey";

  std::unique_ptr<dfs::FileSystem> fs_;
  std::unique_ptr<ql::Catalog> catalog_;
};

TEST_F(DispatchQueryTest, RemoteAndLocalTransportsMatchPlainEngine) {
  ql::DriverOptions plain;
  plain.num_workers = 2;
  ql::Driver baseline(fs_.get(), catalog_.get(), plain);
  auto golden = baseline.Execute(kSql);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  auto want = Canonicalize(golden->rows);
  ASSERT_FALSE(want.empty());

  for (bool simulate_remote : {false, true}) {
    ql::DriverOptions options;
    options.num_workers = 2;
    options.workers.num_workers = 3;
    options.workers.simulate_remote = simulate_remote;
    ql::Driver driver(fs_.get(), catalog_.get(), options);
    ASSERT_NE(driver.transport(), nullptr);
    auto result = driver.Execute(kSql);
    ASSERT_TRUE(result.ok())
        << driver.transport()->name() << ": " << result.status().ToString();
    EXPECT_EQ(Canonicalize(result->rows), want) << driver.transport()->name();
    EXPECT_GT(result->counters.transport_dispatches.load(), 0u)
        << "tasks did not actually route through the dispatch layer";
    EXPECT_EQ(result->counters.transport_fallbacks.load(), 0u);
  }
}

TEST_F(DispatchQueryTest, DuplicateDeliveriesCommitExactlyOnce) {
  ql::DriverOptions plain;
  plain.num_workers = 2;
  ql::Driver baseline(fs_.get(), catalog_.get(), plain);
  auto golden = baseline.Execute(kSql);
  ASSERT_TRUE(golden.ok());
  auto want = Canonicalize(golden->rows);

  // Duplicate EVERY request delivery: each task attempt executes (and
  // commits its attempt files) twice. The engine must still consume exactly
  // one attempt's output — identical rows, not doubled counts.
  FaultConfig config;
  config.send_duplicate_probability = 1.0;
  FaultInjector injector(config);

  ql::DriverOptions options;
  options.num_workers = 2;
  options.workers.num_workers = 2;
  ql::Driver driver(fs_.get(), catalog_.get(), options);
  auto* transport =
      static_cast<SimulatedRemoteTransport*>(driver.transport());
  transport->set_fault_injector(&injector);
  auto result = driver.Execute(kSql);
  transport->set_fault_injector(nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Canonicalize(result->rows), want)
      << "duplicate deliveries changed the result";
  EXPECT_GT(injector.stats().sends_duplicated.load(), 0u)
      << "no duplication ever fired; test is vacuous";
}

TEST_F(DispatchQueryTest, TotalResponseLossFailsTypedNotHung) {
  FaultConfig config;
  config.response_drop_probability = 1.0;
  FaultInjector injector(config);

  ql::DriverOptions options;
  options.num_workers = 2;
  options.max_task_attempts = 2;
  options.workers.num_workers = 2;
  options.workers.rpc_timeout_millis = 150;
  options.workers.retry_backoff.max_millis = 20;
  ql::Driver driver(fs_.get(), catalog_.get(), options);
  static_cast<SimulatedRemoteTransport*>(driver.transport())
      ->set_fault_injector(&injector);
  auto result = driver.Execute(kSql);
  ASSERT_FALSE(result.ok()) << "every response dropped, yet the query passed";
  EXPECT_TRUE(result.status().IsDeadlineExceeded() ||
              result.status().IsIoError())
      << result.status().ToString();
  EXPECT_GT(injector.stats().responses_dropped.load(), 0u);
}

TEST_F(DispatchQueryTest, HeartbeatLossDegradesToLocalFallback) {
  // Every heartbeat dropped: the monitor declares all workers dead, and
  // every subsequent dispatch falls back to the local pool. The query MUST
  // still succeed — full-blacklist degradation is not an error.
  FaultConfig config;
  config.heartbeat_drop_probability = 1.0;
  FaultInjector injector(config);

  ql::DriverOptions plain;
  plain.num_workers = 2;
  ql::Driver baseline(fs_.get(), catalog_.get(), plain);
  auto golden = baseline.Execute(kSql);
  ASSERT_TRUE(golden.ok());
  auto want = Canonicalize(golden->rows);

  ql::DriverOptions options;
  options.num_workers = 2;
  options.workers.num_workers = 2;
  options.workers.heartbeat_millis = 10;
  options.workers.missed_heartbeats_dead = 2;
  ql::Driver driver(fs_.get(), catalog_.get(), options);
  static_cast<SimulatedRemoteTransport*>(driver.transport())
      ->set_fault_injector(&injector);
  // Let the monitor run enough probe rounds to kill both workers.
  for (int i = 0; i < 100 && (driver.worker_manager()->IsAlive(0) ||
                              driver.worker_manager()->IsAlive(1));
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(driver.worker_manager()->IsAlive(0));
  ASSERT_FALSE(driver.worker_manager()->IsAlive(1));

  auto result = driver.Execute(kSql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Canonicalize(result->rows), want);
  EXPECT_GT(result->counters.transport_fallbacks.load(), 0u)
      << "the fallback path never ran";
  EXPECT_GT(injector.stats().heartbeats_dropped.load(), 0u);
  EXPECT_GT(driver.worker_manager()->stats().deaths, 0u);
}

TEST_F(DispatchQueryTest, ExplainProfileSurfacesTransportDeltas) {
  ql::DriverOptions options;
  options.num_workers = 2;
  options.workers.num_workers = 2;
  ql::Driver driver(fs_.get(), catalog_.get(), options);
  auto result = driver.Execute("EXPLAIN PROFILE " + kSql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->plan_text.find("transport.dispatches"),
            std::string::npos)
      << result->plan_text;
  EXPECT_NE(result->plan_text.find("dispatch_transport"), std::string::npos);
}

}  // namespace
}  // namespace minihive::mr
