#!/usr/bin/env python3
"""Check relative links in the repo's Markdown docs.

Usage:
    tools/check_doc_links.py [--root .]

Scans every *.md file under the repo root (skipping build output and hidden
directories) for Markdown links and validates the relative ones:

  - [text](relative/path)        -> the target file/dir must exist
  - [text](relative/path#anchor) -> the file must exist AND contain a
                                    heading whose GitHub slug matches #anchor
  - [text](#anchor)              -> the current file must contain the heading

External links (http/https/mailto) are not fetched — CI must not depend on
the network — and absolute paths are rejected outright (they break on every
checkout that isn't /).

Exit status: 0 when every link resolves, 1 otherwise (each broken link is
reported as file:line).
"""

import argparse
import os
import re
import sys

SKIP_DIRS = {"build", "third_party", "node_modules"}

# [text](target) — non-greedy text, no nested parens in target.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading):
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)  # Inline formatting.
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # Links -> text.
    slug = re.sub(r"[^\w\- ]", "", slug)
    slug = slug.replace(" ", "-")
    return slug


def collect_md_files(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if not d.startswith(".") and d not in SKIP_DIRS]
        for name in filenames:
            if name.lower().endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def anchors_of(md_path, cache):
    if md_path in cache:
        return cache[md_path]
    anchors = set()
    seen = {}
    in_fence = False
    try:
        with open(md_path, "r", encoding="utf-8") as f:
            for line in f:
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if m:
                    slug = github_slug(m.group(1))
                    # Duplicate headings get -1, -2, ... suffixes on GitHub.
                    n = seen.get(slug, 0)
                    seen[slug] = n + 1
                    anchors.add(slug if n == 0 else f"{slug}-{n}")
    except OSError:
        pass
    cache[md_path] = anchors
    return anchors


def check_file(md_path, root, anchor_cache):
    failures = []
    in_fence = False
    with open(md_path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                rel = os.path.relpath(md_path, root)
                if target.startswith("/"):
                    failures.append(f"{rel}:{lineno}: absolute link "
                                    f"'{target}' (use a relative path)")
                    continue
                path_part, _, anchor = target.partition("#")
                if path_part:
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(md_path), path_part))
                    if not os.path.exists(resolved):
                        failures.append(
                            f"{rel}:{lineno}: broken link '{target}' "
                            f"(no such file: {os.path.relpath(resolved, root)})")
                        continue
                else:
                    resolved = md_path
                if anchor and resolved.lower().endswith(".md"):
                    if anchor not in anchors_of(resolved, anchor_cache):
                        failures.append(
                            f"{rel}:{lineno}: broken anchor '{target}' "
                            f"(no heading '#{anchor}' in "
                            f"{os.path.relpath(resolved, root)})")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Validate relative links in Markdown docs.")
    parser.add_argument("--root", default=".",
                        help="repo root to scan (default: cwd)")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    md_files = collect_md_files(root)
    if not md_files:
        print(f"error: no .md files under {root}", file=sys.stderr)
        return 1

    anchor_cache = {}
    failures = []
    checked = 0
    for md in md_files:
        file_failures = check_file(md, root, anchor_cache)
        failures.extend(file_failures)
        checked += 1

    if failures:
        print(f"{len(failures)} broken link(s) across {checked} files:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"all links resolve across {checked} Markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
