#!/usr/bin/env python3
"""Compare BENCH_<name>.json files against committed baselines.

Usage:
    tools/check_bench_regression.py --current <dir> [--baseline bench/baseline]
                                    [--threshold 2.0]

Every BENCH_*.json in the baseline directory must have a counterpart in the
current directory (extra current files are reported but not fatal — a new
bench has no baseline yet). Only *machine-independent* metrics are compared:
those whose unit is one of BYTES / ROWS / COUNT / BATCHES / GROUPS. Timing
("ms", "ns") and throughput ("rate") metrics vary with the host and are
skipped — they are still recorded in the JSON for humans and for trend
dashboards, just not gated.

A metric fails when current/baseline falls outside [1/threshold, threshold]
(default threshold 2.0). Zero baselines compare exactly: 0 -> 0 passes,
0 -> nonzero fails (something that used to be fully skipped or empty now
isn't — worth a human look). An invariant metric present in the current run
but absent from its baseline also fails (the bench emits a counter the
baseline predates — refresh the baseline so the new counter is gated too).

Refreshing baselines after an intentional behavior change:

    cmake --build build -j
    MINIHIVE_BENCH_SMOKE=1 MINIHIVE_BENCH_OUT_DIR=bench/baseline \
        ./build/bench/bench_micro_shuffle
    MINIHIVE_BENCH_SMOKE=1 MINIHIVE_BENCH_OUT_DIR=bench/baseline \
        ./build/bench/bench_micro_kernels
    MINIHIVE_BENCH_SMOKE=1 MINIHIVE_BENCH_OUT_DIR=bench/baseline \
        ./build/bench/bench_fig12_vectorized
    git add bench/baseline  # and explain the shift in the commit message

Exit status: 0 when all compared metrics pass, 1 on any failure or on a
missing/corrupt file.
"""

import argparse
import glob
import json
import os
import sys

# Units that do not depend on the machine the bench ran on.
INVARIANT_UNITS = {"bytes", "rows", "count", "batches", "groups"}


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema_version") != 1:
        raise ValueError(f"{path}: unsupported schema_version "
                         f"{data.get('schema_version')!r}")
    return data


def compare(name, baseline, current, threshold):
    """Returns a list of failure strings for one bench."""
    failures = []
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    if baseline.get("smoke") != current.get("smoke"):
        failures.append(
            f"{name}: smoke flag differs (baseline={baseline.get('smoke')}, "
            f"current={current.get('smoke')}) — comparing different shapes")
        return failures
    for metric, base in sorted(base_metrics.items()):
        unit = base.get("unit", "")
        if unit not in INVARIANT_UNITS:
            continue
        cur = cur_metrics.get(metric)
        if cur is None:
            failures.append(f"{name}: metric '{metric}' missing from current run")
            continue
        if "value" not in base or "value" not in cur:
            which = "baseline" if "value" not in base else "current"
            failures.append(
                f"{name}: metric '{metric}' has no value in the {which} file "
                f"— corrupt or hand-edited JSON")
            continue
        base_value = float(base["value"])
        cur_value = float(cur["value"])
        if base_value == 0.0:
            if cur_value != 0.0:
                failures.append(
                    f"{name}: '{metric}' was 0 in baseline, now {cur_value:g}")
            continue
        ratio = cur_value / base_value
        if ratio < 1.0 / threshold or ratio > threshold:
            failures.append(
                f"{name}: '{metric}' {base_value:g} -> {cur_value:g} "
                f"({ratio:.2f}x, allowed [{1.0 / threshold:.2f}, "
                f"{threshold:.2f}])")
    # The reverse direction: the bench now emits an invariant counter the
    # committed baseline has no entry for (typically a new JobCounters
    # field). Fail with a clear pointer instead of silently skipping it —
    # an ungated counter is a regression gate with a hole in it.
    for metric, cur in sorted(cur_metrics.items()):
        unit = cur.get("unit", "") if isinstance(cur, dict) else ""
        if unit not in INVARIANT_UNITS or metric in base_metrics:
            continue
        failures.append(
            f"{name}: metric '{metric}' ({unit}) has no baseline entry — the "
            f"bench emits a counter its baseline predates; refresh "
            f"bench/baseline/ (see the docstring of this script)")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Gate machine-independent bench metrics vs baselines.")
    parser.add_argument("--current", required=True,
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--baseline", default="bench/baseline",
                        help="directory holding committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max allowed current/baseline ratio (default 2.0)")
    args = parser.parse_args()

    baseline_files = sorted(glob.glob(os.path.join(args.baseline,
                                                   "BENCH_*.json")))
    if not baseline_files:
        print(f"error: no BENCH_*.json under {args.baseline}", file=sys.stderr)
        return 1

    failures = []
    compared = 0
    for base_path in baseline_files:
        fname = os.path.basename(base_path)
        cur_path = os.path.join(args.current, fname)
        if not os.path.exists(cur_path):
            failures.append(f"{fname}: no current result in {args.current}")
            continue
        try:
            baseline = load(base_path)
            current = load(cur_path)
        except (ValueError, json.JSONDecodeError) as err:
            failures.append(f"{fname}: {err}")
            continue
        bench_failures = compare(fname, baseline, current, args.threshold)
        failures.extend(bench_failures)
        n = sum(1 for m in baseline.get("metrics", {}).values()
                if m.get("unit") in INVARIANT_UNITS)
        compared += n
        status = "FAIL" if bench_failures else "ok"
        print(f"  {fname}: {n} invariant metrics compared ... {status}")

    extra = sorted(set(os.path.basename(p) for p in
                       glob.glob(os.path.join(args.current, "BENCH_*.json"))) -
                   set(os.path.basename(p) for p in baseline_files))
    for fname in extra:
        print(f"  {fname}: no baseline (new bench?) — skipped")

    if failures:
        print(f"\n{len(failures)} regression(s) across {compared} compared "
              "metrics:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nIf the change is intentional, refresh bench/baseline/ — see "
              "the docstring of this script.", file=sys.stderr)
        return 1
    print(f"\nall {compared} invariant metrics within "
          f"[{1.0 / args.threshold:.2f}, {args.threshold:.2f}]x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
