# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for orc_layout_test.
