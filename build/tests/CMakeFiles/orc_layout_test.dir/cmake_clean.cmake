file(REMOVE_RECURSE
  "CMakeFiles/orc_layout_test.dir/orc_layout_test.cc.o"
  "CMakeFiles/orc_layout_test.dir/orc_layout_test.cc.o.d"
  "orc_layout_test"
  "orc_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orc_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
