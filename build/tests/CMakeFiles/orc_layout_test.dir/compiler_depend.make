# Empty compiler generated dependencies file for orc_layout_test.
# This may be replaced when dependencies are built.
