file(REMOVE_RECURSE
  "CMakeFiles/orc_stream_encoding_test.dir/orc_stream_encoding_test.cc.o"
  "CMakeFiles/orc_stream_encoding_test.dir/orc_stream_encoding_test.cc.o.d"
  "orc_stream_encoding_test"
  "orc_stream_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orc_stream_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
