# Empty compiler generated dependencies file for orc_stream_encoding_test.
# This may be replaced when dependencies are built.
