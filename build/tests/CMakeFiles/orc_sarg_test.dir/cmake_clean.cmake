file(REMOVE_RECURSE
  "CMakeFiles/orc_sarg_test.dir/orc_sarg_test.cc.o"
  "CMakeFiles/orc_sarg_test.dir/orc_sarg_test.cc.o.d"
  "orc_sarg_test"
  "orc_sarg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orc_sarg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
