# Empty dependencies file for orc_sarg_test.
# This may be replaced when dependencies are built.
