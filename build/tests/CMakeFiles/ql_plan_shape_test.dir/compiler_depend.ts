# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ql_plan_shape_test.
