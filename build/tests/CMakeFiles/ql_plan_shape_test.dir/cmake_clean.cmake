file(REMOVE_RECURSE
  "CMakeFiles/ql_plan_shape_test.dir/ql_plan_shape_test.cc.o"
  "CMakeFiles/ql_plan_shape_test.dir/ql_plan_shape_test.cc.o.d"
  "ql_plan_shape_test"
  "ql_plan_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ql_plan_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
