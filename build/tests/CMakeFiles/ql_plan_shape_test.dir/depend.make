# Empty dependencies file for ql_plan_shape_test.
# This may be replaced when dependencies are built.
