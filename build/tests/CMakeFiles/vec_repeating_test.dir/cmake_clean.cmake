file(REMOVE_RECURSE
  "CMakeFiles/vec_repeating_test.dir/vec_repeating_test.cc.o"
  "CMakeFiles/vec_repeating_test.dir/vec_repeating_test.cc.o.d"
  "vec_repeating_test"
  "vec_repeating_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec_repeating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
