# Empty dependencies file for ql_stats_aggregation_test.
# This may be replaced when dependencies are built.
