file(REMOVE_RECURSE
  "CMakeFiles/ql_stats_aggregation_test.dir/ql_stats_aggregation_test.cc.o"
  "CMakeFiles/ql_stats_aggregation_test.dir/ql_stats_aggregation_test.cc.o.d"
  "ql_stats_aggregation_test"
  "ql_stats_aggregation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ql_stats_aggregation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
