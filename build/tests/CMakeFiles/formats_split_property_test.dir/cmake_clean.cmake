file(REMOVE_RECURSE
  "CMakeFiles/formats_split_property_test.dir/formats_split_property_test.cc.o"
  "CMakeFiles/formats_split_property_test.dir/formats_split_property_test.cc.o.d"
  "formats_split_property_test"
  "formats_split_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formats_split_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
