file(REMOVE_RECURSE
  "CMakeFiles/exec_operators_test.dir/exec_operators_test.cc.o"
  "CMakeFiles/exec_operators_test.dir/exec_operators_test.cc.o.d"
  "exec_operators_test"
  "exec_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
