file(REMOVE_RECURSE
  "CMakeFiles/ql_correlation_test.dir/ql_correlation_test.cc.o"
  "CMakeFiles/ql_correlation_test.dir/ql_correlation_test.cc.o.d"
  "ql_correlation_test"
  "ql_correlation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ql_correlation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
