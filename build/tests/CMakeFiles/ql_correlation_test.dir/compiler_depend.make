# Empty compiler generated dependencies file for ql_correlation_test.
# This may be replaced when dependencies are built.
