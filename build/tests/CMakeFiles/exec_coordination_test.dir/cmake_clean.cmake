file(REMOVE_RECURSE
  "CMakeFiles/exec_coordination_test.dir/exec_coordination_test.cc.o"
  "CMakeFiles/exec_coordination_test.dir/exec_coordination_test.cc.o.d"
  "exec_coordination_test"
  "exec_coordination_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_coordination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
