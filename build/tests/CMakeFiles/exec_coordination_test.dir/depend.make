# Empty dependencies file for exec_coordination_test.
# This may be replaced when dependencies are built.
