file(REMOVE_RECURSE
  "CMakeFiles/common_types_test.dir/common_types_test.cc.o"
  "CMakeFiles/common_types_test.dir/common_types_test.cc.o.d"
  "common_types_test"
  "common_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
