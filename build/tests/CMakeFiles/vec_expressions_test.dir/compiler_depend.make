# Empty compiler generated dependencies file for vec_expressions_test.
# This may be replaced when dependencies are built.
