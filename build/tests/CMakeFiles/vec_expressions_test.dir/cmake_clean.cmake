file(REMOVE_RECURSE
  "CMakeFiles/vec_expressions_test.dir/vec_expressions_test.cc.o"
  "CMakeFiles/vec_expressions_test.dir/vec_expressions_test.cc.o.d"
  "vec_expressions_test"
  "vec_expressions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec_expressions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
