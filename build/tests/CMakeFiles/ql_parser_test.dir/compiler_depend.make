# Empty compiler generated dependencies file for ql_parser_test.
# This may be replaced when dependencies are built.
