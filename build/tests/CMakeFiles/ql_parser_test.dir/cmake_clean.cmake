file(REMOVE_RECURSE
  "CMakeFiles/ql_parser_test.dir/ql_parser_test.cc.o"
  "CMakeFiles/ql_parser_test.dir/ql_parser_test.cc.o.d"
  "ql_parser_test"
  "ql_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
