file(REMOVE_RECURSE
  "CMakeFiles/orc_fuzz_test.dir/orc_fuzz_test.cc.o"
  "CMakeFiles/orc_fuzz_test.dir/orc_fuzz_test.cc.o.d"
  "orc_fuzz_test"
  "orc_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orc_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
