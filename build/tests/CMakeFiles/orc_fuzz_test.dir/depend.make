# Empty dependencies file for orc_fuzz_test.
# This may be replaced when dependencies are built.
