# Empty compiler generated dependencies file for orc_file_test.
# This may be replaced when dependencies are built.
