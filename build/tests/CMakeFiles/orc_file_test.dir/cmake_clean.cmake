file(REMOVE_RECURSE
  "CMakeFiles/orc_file_test.dir/orc_file_test.cc.o"
  "CMakeFiles/orc_file_test.dir/orc_file_test.cc.o.d"
  "orc_file_test"
  "orc_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orc_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
