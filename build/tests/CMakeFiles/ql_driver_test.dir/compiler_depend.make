# Empty compiler generated dependencies file for ql_driver_test.
# This may be replaced when dependencies are built.
