file(REMOVE_RECURSE
  "CMakeFiles/ql_driver_test.dir/ql_driver_test.cc.o"
  "CMakeFiles/ql_driver_test.dir/ql_driver_test.cc.o.d"
  "ql_driver_test"
  "ql_driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ql_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
