# Empty dependencies file for vec_pipeline_test.
# This may be replaced when dependencies are built.
