file(REMOVE_RECURSE
  "CMakeFiles/vec_pipeline_test.dir/vec_pipeline_test.cc.o"
  "CMakeFiles/vec_pipeline_test.dir/vec_pipeline_test.cc.o.d"
  "vec_pipeline_test"
  "vec_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
