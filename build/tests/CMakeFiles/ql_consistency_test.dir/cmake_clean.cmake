file(REMOVE_RECURSE
  "CMakeFiles/ql_consistency_test.dir/ql_consistency_test.cc.o"
  "CMakeFiles/ql_consistency_test.dir/ql_consistency_test.cc.o.d"
  "ql_consistency_test"
  "ql_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ql_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
