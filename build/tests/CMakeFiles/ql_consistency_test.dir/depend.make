# Empty dependencies file for ql_consistency_test.
# This may be replaced when dependencies are built.
