file(REMOVE_RECURSE
  "CMakeFiles/ql_edge_cases_test.dir/ql_edge_cases_test.cc.o"
  "CMakeFiles/ql_edge_cases_test.dir/ql_edge_cases_test.cc.o.d"
  "ql_edge_cases_test"
  "ql_edge_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ql_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
