file(REMOVE_RECURSE
  "CMakeFiles/exec_expr_test.dir/exec_expr_test.cc.o"
  "CMakeFiles/exec_expr_test.dir/exec_expr_test.cc.o.d"
  "exec_expr_test"
  "exec_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
