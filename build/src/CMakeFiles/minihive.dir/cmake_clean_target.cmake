file(REMOVE_RECURSE
  "libminihive.a"
)
