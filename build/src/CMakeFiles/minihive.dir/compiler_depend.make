# Empty compiler generated dependencies file for minihive.
# This may be replaced when dependencies are built.
