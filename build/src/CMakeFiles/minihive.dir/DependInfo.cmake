
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/codec.cc" "src/CMakeFiles/minihive.dir/codec/codec.cc.o" "gcc" "src/CMakeFiles/minihive.dir/codec/codec.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/minihive.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/minihive.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/minihive.dir/common/status.cc.o" "gcc" "src/CMakeFiles/minihive.dir/common/status.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/minihive.dir/common/types.cc.o" "gcc" "src/CMakeFiles/minihive.dir/common/types.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/minihive.dir/common/value.cc.o" "gcc" "src/CMakeFiles/minihive.dir/common/value.cc.o.d"
  "/root/repo/src/datagen/loader.cc" "src/CMakeFiles/minihive.dir/datagen/loader.cc.o" "gcc" "src/CMakeFiles/minihive.dir/datagen/loader.cc.o.d"
  "/root/repo/src/datagen/ssdb.cc" "src/CMakeFiles/minihive.dir/datagen/ssdb.cc.o" "gcc" "src/CMakeFiles/minihive.dir/datagen/ssdb.cc.o.d"
  "/root/repo/src/datagen/tpcds.cc" "src/CMakeFiles/minihive.dir/datagen/tpcds.cc.o" "gcc" "src/CMakeFiles/minihive.dir/datagen/tpcds.cc.o.d"
  "/root/repo/src/datagen/tpch.cc" "src/CMakeFiles/minihive.dir/datagen/tpch.cc.o" "gcc" "src/CMakeFiles/minihive.dir/datagen/tpch.cc.o.d"
  "/root/repo/src/dfs/file_system.cc" "src/CMakeFiles/minihive.dir/dfs/file_system.cc.o" "gcc" "src/CMakeFiles/minihive.dir/dfs/file_system.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/CMakeFiles/minihive.dir/exec/expr.cc.o" "gcc" "src/CMakeFiles/minihive.dir/exec/expr.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/minihive.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/minihive.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/CMakeFiles/minihive.dir/exec/plan.cc.o" "gcc" "src/CMakeFiles/minihive.dir/exec/plan.cc.o.d"
  "/root/repo/src/formats/format.cc" "src/CMakeFiles/minihive.dir/formats/format.cc.o" "gcc" "src/CMakeFiles/minihive.dir/formats/format.cc.o.d"
  "/root/repo/src/formats/orcfile_adapter.cc" "src/CMakeFiles/minihive.dir/formats/orcfile_adapter.cc.o" "gcc" "src/CMakeFiles/minihive.dir/formats/orcfile_adapter.cc.o.d"
  "/root/repo/src/formats/rcfile.cc" "src/CMakeFiles/minihive.dir/formats/rcfile.cc.o" "gcc" "src/CMakeFiles/minihive.dir/formats/rcfile.cc.o.d"
  "/root/repo/src/formats/seqfile.cc" "src/CMakeFiles/minihive.dir/formats/seqfile.cc.o" "gcc" "src/CMakeFiles/minihive.dir/formats/seqfile.cc.o.d"
  "/root/repo/src/formats/textfile.cc" "src/CMakeFiles/minihive.dir/formats/textfile.cc.o" "gcc" "src/CMakeFiles/minihive.dir/formats/textfile.cc.o.d"
  "/root/repo/src/mr/engine.cc" "src/CMakeFiles/minihive.dir/mr/engine.cc.o" "gcc" "src/CMakeFiles/minihive.dir/mr/engine.cc.o.d"
  "/root/repo/src/orc/layout.cc" "src/CMakeFiles/minihive.dir/orc/layout.cc.o" "gcc" "src/CMakeFiles/minihive.dir/orc/layout.cc.o.d"
  "/root/repo/src/orc/reader.cc" "src/CMakeFiles/minihive.dir/orc/reader.cc.o" "gcc" "src/CMakeFiles/minihive.dir/orc/reader.cc.o.d"
  "/root/repo/src/orc/sarg.cc" "src/CMakeFiles/minihive.dir/orc/sarg.cc.o" "gcc" "src/CMakeFiles/minihive.dir/orc/sarg.cc.o.d"
  "/root/repo/src/orc/statistics.cc" "src/CMakeFiles/minihive.dir/orc/statistics.cc.o" "gcc" "src/CMakeFiles/minihive.dir/orc/statistics.cc.o.d"
  "/root/repo/src/orc/stream_encoding.cc" "src/CMakeFiles/minihive.dir/orc/stream_encoding.cc.o" "gcc" "src/CMakeFiles/minihive.dir/orc/stream_encoding.cc.o.d"
  "/root/repo/src/orc/writer.cc" "src/CMakeFiles/minihive.dir/orc/writer.cc.o" "gcc" "src/CMakeFiles/minihive.dir/orc/writer.cc.o.d"
  "/root/repo/src/ql/analyzer.cc" "src/CMakeFiles/minihive.dir/ql/analyzer.cc.o" "gcc" "src/CMakeFiles/minihive.dir/ql/analyzer.cc.o.d"
  "/root/repo/src/ql/catalog.cc" "src/CMakeFiles/minihive.dir/ql/catalog.cc.o" "gcc" "src/CMakeFiles/minihive.dir/ql/catalog.cc.o.d"
  "/root/repo/src/ql/driver.cc" "src/CMakeFiles/minihive.dir/ql/driver.cc.o" "gcc" "src/CMakeFiles/minihive.dir/ql/driver.cc.o.d"
  "/root/repo/src/ql/optimizer.cc" "src/CMakeFiles/minihive.dir/ql/optimizer.cc.o" "gcc" "src/CMakeFiles/minihive.dir/ql/optimizer.cc.o.d"
  "/root/repo/src/ql/parser.cc" "src/CMakeFiles/minihive.dir/ql/parser.cc.o" "gcc" "src/CMakeFiles/minihive.dir/ql/parser.cc.o.d"
  "/root/repo/src/ql/runtime.cc" "src/CMakeFiles/minihive.dir/ql/runtime.cc.o" "gcc" "src/CMakeFiles/minihive.dir/ql/runtime.cc.o.d"
  "/root/repo/src/ql/task_compiler.cc" "src/CMakeFiles/minihive.dir/ql/task_compiler.cc.o" "gcc" "src/CMakeFiles/minihive.dir/ql/task_compiler.cc.o.d"
  "/root/repo/src/serde/serde.cc" "src/CMakeFiles/minihive.dir/serde/serde.cc.o" "gcc" "src/CMakeFiles/minihive.dir/serde/serde.cc.o.d"
  "/root/repo/src/vec/vector_expressions.cc" "src/CMakeFiles/minihive.dir/vec/vector_expressions.cc.o" "gcc" "src/CMakeFiles/minihive.dir/vec/vector_expressions.cc.o.d"
  "/root/repo/src/vec/vectorized_pipeline.cc" "src/CMakeFiles/minihive.dir/vec/vectorized_pipeline.cc.o" "gcc" "src/CMakeFiles/minihive.dir/vec/vectorized_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
