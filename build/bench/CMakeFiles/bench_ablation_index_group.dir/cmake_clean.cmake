file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_index_group.dir/bench_ablation_index_group.cc.o"
  "CMakeFiles/bench_ablation_index_group.dir/bench_ablation_index_group.cc.o.d"
  "bench_ablation_index_group"
  "bench_ablation_index_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_index_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
