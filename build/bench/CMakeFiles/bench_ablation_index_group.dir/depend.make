# Empty dependencies file for bench_ablation_index_group.
# This may be replaced when dependencies are built.
