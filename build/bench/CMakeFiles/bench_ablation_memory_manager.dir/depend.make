# Empty dependencies file for bench_ablation_memory_manager.
# This may be replaced when dependencies are built.
