file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_vectorized.dir/bench_fig12_vectorized.cc.o"
  "CMakeFiles/bench_fig12_vectorized.dir/bench_fig12_vectorized.cc.o.d"
  "bench_fig12_vectorized"
  "bench_fig12_vectorized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_vectorized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
