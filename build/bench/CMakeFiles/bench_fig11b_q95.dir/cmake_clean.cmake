file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_q95.dir/bench_fig11b_q95.cc.o"
  "CMakeFiles/bench_fig11b_q95.dir/bench_fig11b_q95.cc.o.d"
  "bench_fig11b_q95"
  "bench_fig11b_q95.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_q95.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
