# Empty dependencies file for bench_fig11b_q95.
# This may be replaced when dependencies are built.
