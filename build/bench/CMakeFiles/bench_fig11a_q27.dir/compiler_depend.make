# Empty compiler generated dependencies file for bench_fig11a_q27.
# This may be replaced when dependencies are built.
