file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_q27.dir/bench_fig11a_q27.cc.o"
  "CMakeFiles/bench_fig11a_q27.dir/bench_fig11a_q27.cc.o.d"
  "bench_fig11a_q27"
  "bench_fig11a_q27.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_q27.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
