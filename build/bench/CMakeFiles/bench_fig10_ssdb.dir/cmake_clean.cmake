file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ssdb.dir/bench_fig10_ssdb.cc.o"
  "CMakeFiles/bench_fig10_ssdb.dir/bench_fig10_ssdb.cc.o.d"
  "bench_fig10_ssdb"
  "bench_fig10_ssdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ssdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
