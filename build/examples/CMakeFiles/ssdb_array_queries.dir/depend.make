# Empty dependencies file for ssdb_array_queries.
# This may be replaced when dependencies are built.
