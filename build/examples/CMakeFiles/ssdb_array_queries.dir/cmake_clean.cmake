file(REMOVE_RECURSE
  "CMakeFiles/ssdb_array_queries.dir/ssdb_array_queries.cpp.o"
  "CMakeFiles/ssdb_array_queries.dir/ssdb_array_queries.cpp.o.d"
  "ssdb_array_queries"
  "ssdb_array_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssdb_array_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
