file(REMOVE_RECURSE
  "CMakeFiles/format_inspector.dir/format_inspector.cpp.o"
  "CMakeFiles/format_inspector.dir/format_inspector.cpp.o.d"
  "format_inspector"
  "format_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
